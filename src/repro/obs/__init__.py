"""repro.obs — the unified runtime observability plane.

One subsystem shared by every layer of the stack: the batch strategies,
the parallel executor, the micro-batching service, the dynamic index and
the fault injector all publish into the same
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.spans.SpanRecorder`, exported via Prometheus text or
JSON (:mod:`repro.obs.export`) and rendered by ``python -m repro.cli
stats``.

The plane is **off by default** and instrumentation is a no-op when
disabled: every hook site starts with ``ob = obs.active()`` and does
nothing when that returns ``None`` — one attribute load, one call, one
``is None`` check per *batch-grained* operation (never per query).  The
``make obs-smoke`` benchmark enforces the <5 % overhead policy on the
tier-1 strategies with the plane off.

Usage::

    from repro import obs

    obs.configure(enabled=True)           # turn the plane on
    ...run strategies / the service...
    print(obs.render())                   # human table
    text = obs.prometheus()               # exposition format
    obs.configure(enabled=False)          # back to zero-cost

Span hierarchy: ``strategy.batch`` → ``strategy.level`` →
``strategy.partition`` (partition detail only with
``trace_partitions=True``), plus ``service.flush``,
``service.swap_index``, ``dynamic.rebuild`` and ``parallel.chunk``.
Metric names are documented in ``docs/observability.md``.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    POW2_BUCKETS,
)
from repro.obs.spans import SPAN_LATENCY_METRIC, Span, SpanRecorder
from repro.obs.tracecontext import (
    TraceContext,
    format_trace_id,
    new_trace_id,
    parse_trace_id,
)
from repro.obs.export import (
    render_table,
    snapshot_dict,
    to_json,
    to_prometheus,
)

__all__ = [
    "Observability",
    "ObsConfig",
    "configure",
    "active",
    "enabled",
    "registry",
    "recorder",
    "reset",
    "snapshot",
    "render",
    "prometheus",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "TraceContext",
    "new_trace_id",
    "format_trace_id",
    "parse_trace_id",
    "LATENCY_BUCKETS",
    "POW2_BUCKETS",
    "SPAN_LATENCY_METRIC",
]

# Canonical metric names of the strategy layer (one place, so tests and
# docs cannot drift from the instrumentation).
STRATEGY_BATCHES = "repro_strategy_batches_total"
STRATEGY_QUERIES = "repro_strategy_queries_total"
STRATEGY_BATCH_SECONDS = "repro_strategy_batch_seconds"
STRATEGY_LEVEL_SECONDS = "repro_strategy_level_seconds"
STRATEGY_PARTITION_TOUCHES = "repro_strategy_partition_touches_total"
PARALLEL_CHUNKS = "repro_parallel_chunks_total"
PARALLEL_CHUNK_SECONDS = "repro_parallel_chunk_seconds"
FAULTS_INJECTED = "repro_faults_injected_total"
SHARD_BATCHES = "repro_shard_batches_total"
SHARD_QUERIES = "repro_shard_queries_total"
SHARD_SPILL_QUERIES = "repro_shard_spill_queries_total"
SHARD_BATCH_SECONDS = "repro_shard_batch_seconds"
ENGINE_BATCHES = "repro_engine_batches_total"
ENGINE_QUERIES = "repro_engine_queries_total"
ENGINE_BATCH_SECONDS = "repro_engine_batch_seconds"
ENGINE_FALLBACKS = "repro_engine_fallbacks_total"
ENGINE_ARENA_BYTES = "repro_engine_arena_bytes"
ENGINE_ARENA_SEGMENTS = "repro_engine_arena_segments"
CACHE_HITS = "repro_cache_hits_total"
CACHE_MISSES = "repro_cache_misses_total"
CACHE_EVICTIONS = "repro_cache_evictions_total"
CACHE_INVALIDATIONS = "repro_cache_invalidations_total"
CACHE_FLUSHES = "repro_cache_flushes_total"
CACHE_BYTES = "repro_cache_bytes_resident"
CACHE_ENTRIES = "repro_cache_entries"
NET_REQUESTS = "repro_net_requests_total"
NET_REQUEST_SECONDS = "repro_net_request_seconds"
NET_CONNECTIONS = "repro_net_connections_total"
NET_CONNECTIONS_ACTIVE = "repro_net_connections_active"
NET_DEADLINE_DROPPED = "repro_net_deadline_dropped_total"
NET_ADMISSION_REJECTED = "repro_net_admission_rejected_total"
NET_OVERLOAD_SHED = "repro_net_overload_shed_total"
NET_DECODE_ERRORS = "repro_net_decode_errors_total"
WORKER_MERGES = "repro_worker_telemetry_merges_total"
SLO_LATENCY_QUANTILE = "repro_slo_latency_quantile_seconds"
SLO_LATENCY_TARGET = "repro_slo_latency_target_seconds"
SLO_BURN_RATE = "repro_slo_error_budget_burn_rate"
SLO_VIOLATIONS = "repro_slo_violations_total"
KERNEL_INVOCATIONS = "repro_kernel_invocations_total"
KERNEL_COMPILE_SECONDS = "repro_kernel_compile_seconds"
KERNEL_FALLBACK_ACTIVE = "repro_kernel_fallback_active"
PLANNER_DECISIONS = "repro_planner_decisions_total"
PLANNER_SPLITS = "repro_planner_split_batches_total"
PLANNER_COST_ERROR = "repro_planner_cost_error"
PLANNER_EXPLORATIONS = "repro_planner_exploration_total"
PLANNER_CALIBRATION_AGE = "repro_planner_calibration_age_seconds"
PLANNER_FALLBACKS = "repro_planner_fallbacks_total"

#: Relative-error buckets of the predicted-vs-observed cost histogram.
COST_ERROR_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)


class ObsConfig:
    """Configuration of the plane (immutable once applied)."""

    __slots__ = (
        "enabled",
        "trace_partitions",
        "span_capacity",
        "slow_threshold_s",
        "slow_overrides",
        "trace_sample_rate",
    )

    def __init__(
        self,
        *,
        enabled: bool = False,
        trace_partitions: bool = False,
        span_capacity: int = 4096,
        slow_threshold_s: float = 0.1,
        slow_overrides: Optional[Mapping[str, float]] = None,
        trace_sample_rate: float = 1.0,
    ):
        self.enabled = bool(enabled)
        self.trace_partitions = bool(trace_partitions)
        self.span_capacity = int(span_capacity)
        self.slow_threshold_s = float(slow_threshold_s)
        self.slow_overrides = dict(slow_overrides or {})
        if not 0.0 <= float(trace_sample_rate) <= 1.0:
            raise ValueError("trace_sample_rate must lie in [0, 1]")
        self.trace_sample_rate = float(trace_sample_rate)

    def __repr__(self) -> str:
        return (
            f"ObsConfig(enabled={self.enabled}, "
            f"trace_partitions={self.trace_partitions}, "
            f"span_capacity={self.span_capacity})"
        )


class Observability:
    """The live plane: one registry + one span recorder + helpers.

    Instrumented modules call the ``record_*`` helpers below rather than
    naming metrics inline, which keeps series names consistent across
    layers (and in ``docs/observability.md``).
    """

    def __init__(self, config: ObsConfig):
        self.config = config
        self.registry = MetricsRegistry()
        self.recorder = SpanRecorder(
            capacity=config.span_capacity,
            slow_threshold_s=config.slow_threshold_s,
            slow_overrides=config.slow_overrides,
            registry=self.registry,
        )

    # -------------------------------------------------------------- #
    # generic helpers
    # -------------------------------------------------------------- #

    def span(self, name: str, **attrs):
        """Open a span (context manager yielding the mutable span)."""
        return self.recorder.span(name, **attrs)

    def sample_trace(self) -> bool:
        """Head-based sampling verdict for a fresh trace.

        Decided once at the entry point (the query server) and carried
        on the :class:`TraceContext` from there on; slow and errored
        worker spans ship regardless (see :mod:`repro.obs.aggregate`).
        """
        rate = self.config.trace_sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return random.random() < rate

    # -------------------------------------------------------------- #
    # strategy instrumentation
    # -------------------------------------------------------------- #

    @contextmanager
    def strategy_span(self, strategy: str, queries: int, mode: str):
        """Wraps one batch-strategy execution: the ``strategy.batch``
        span plus the batch/query counters and latency histogram."""
        reg = self.registry
        reg.counter(
            STRATEGY_BATCHES,
            labels={"strategy": strategy},
            help="Batches executed, by strategy.",
        ).inc()
        reg.counter(
            STRATEGY_QUERIES,
            labels={"strategy": strategy},
            help="Queries executed, by strategy.",
        ).inc(int(queries))
        t0 = time.perf_counter()
        try:
            with self.recorder.span(
                "strategy.batch", strategy=strategy, queries=int(queries), mode=mode
            ) as sp:
                yield sp
        finally:
            reg.histogram(
                STRATEGY_BATCH_SECONDS,
                buckets=LATENCY_BUCKETS,
                labels={"strategy": strategy},
                help="End-to-end batch execution latency, by strategy.",
            ).observe(time.perf_counter() - t0)

    def record_level(
        self,
        strategy: str,
        level: int,
        *,
        f=None,
        l=None,
        touches: Optional[int] = None,
        duration: Optional[float] = None,
    ) -> int:
        """Per-level accounting of one strategy pass.

        *f* and *l* are the first/last relevant partition prefixes of
        every query at this level (arrays); the partition-touch count is
        ``sum(l - f + 1)`` — exactly the number of ``recorder.record``
        calls the reference implementation
        (:mod:`repro.analysis.trace`) makes at this level, so live
        counters and offline traces agree verbatim.  Callers that
        accumulate the count themselves (the per-query strategy) pass
        *touches* directly instead of the arrays.
        """
        if f is not None:
            f = np.asarray(f)
            l = np.asarray(l)
        if touches is None:
            if f is None:
                raise ValueError("record_level needs either touches or f/l")
            touches = int(np.sum(l - f + 1)) if f.size else 0
        self.registry.counter(
            STRATEGY_PARTITION_TOUCHES,
            labels={"strategy": strategy, "level": level},
            help="Partition touches per level (matches AccessRecorder).",
        ).inc(touches)
        span_id = None
        if duration is not None:
            self.registry.histogram(
                STRATEGY_LEVEL_SECONDS,
                buckets=LATENCY_BUCKETS,
                labels={"strategy": strategy},
                help="Per-level pass latency, by strategy.",
            ).observe(duration)
            sp = self.recorder.add(
                "strategy.level",
                duration,
                attrs={"strategy": strategy, "level": level, "touches": touches},
            )
            span_id = sp.span_id
        if self.config.trace_partitions and f is not None and f.size:
            self._record_partitions(strategy, level, f, l, span_id)
        return touches

    def _record_partitions(self, strategy, level, f, l, parent_id) -> None:
        """Partition-grained detail: one ``strategy.partition`` span per
        touched partition of the level (ascending, like Algorithm 4's
        sweep), carrying how many queries touch it."""
        size = int(l.max()) + 2
        diff = np.bincount(f, minlength=size) - np.bincount(l + 1, minlength=size)
        counts = np.cumsum(diff[:-1])
        parts = np.flatnonzero(counts)
        for part in parts:
            self.recorder.add(
                "strategy.partition",
                0.0,
                attrs={
                    "strategy": strategy,
                    "level": int(level),
                    "partition": int(part),
                    "queries": int(counts[part]),
                },
                parent_id=parent_id,
            )

    # -------------------------------------------------------------- #
    # other layers
    # -------------------------------------------------------------- #

    def record_parallel_chunk(
        self,
        strategy: str,
        worker: int,
        queries: int,
        duration: float,
        *,
        trace_ids: Optional[Sequence[int]] = None,
        parent_id: Optional[int] = None,
    ) -> None:
        """*trace_ids*/*parent_id* are passed explicitly because chunk
        spans are recorded from pool threads, outside the dispatching
        thread's :meth:`~repro.obs.spans.SpanRecorder.trace_scope`."""
        self.registry.counter(
            PARALLEL_CHUNKS,
            labels={"strategy": strategy},
            help="Chunks executed by the parallel executor.",
        ).inc()
        self.registry.histogram(
            PARALLEL_CHUNK_SECONDS,
            buckets=LATENCY_BUCKETS,
            labels={"strategy": strategy},
            help="Per-worker chunk latency of the parallel executor.",
        ).observe(duration)
        self.recorder.add(
            "parallel.chunk",
            duration,
            attrs={"strategy": strategy, "worker": int(worker), "queries": int(queries)},
            parent_id=parent_id,
            trace_ids=trace_ids,
        )

    def record_shard_batch(
        self,
        shard: int,
        queries: int,
        spill: int,
        duration: float,
        *,
        trace_ids: Optional[Sequence[int]] = None,
        parent_id: Optional[int] = None,
    ) -> None:
        """Per-shard accounting of one sharded-batch execution.

        *queries* are the shard's primary queries (starts in the shard),
        *spill* the boundary-spanning queries fanned in from earlier
        shards.  Every series carries a ``shard`` label so skew between
        shards — the straggler that bounds the whole batch — is visible
        live.  *trace_ids*/*parent_id* are passed explicitly because
        shard spans are recorded from pool threads, outside the
        dispatching thread's trace scope.
        """
        labels = {"shard": int(shard)}
        self.registry.counter(
            SHARD_BATCHES,
            labels=labels,
            help="Sub-batches executed, by shard.",
        ).inc()
        self.registry.counter(
            SHARD_QUERIES,
            labels=labels,
            help="Primary queries routed to each shard.",
        ).inc(int(queries))
        if spill:
            self.registry.counter(
                SHARD_SPILL_QUERIES,
                labels=labels,
                help="Boundary-spanning queries fanned into each shard.",
            ).inc(int(spill))
        self.registry.histogram(
            SHARD_BATCH_SECONDS,
            buckets=LATENCY_BUCKETS,
            labels=labels,
            help="Per-shard sub-batch execution latency.",
        ).observe(duration)
        self.recorder.add(
            "shard.batch",
            duration,
            attrs={"shard": int(shard), "queries": int(queries), "spill": int(spill)},
            parent_id=parent_id,
            trace_ids=trace_ids,
        )

    def record_engine_batch(
        self, backend: str, queries: int, duration: float
    ) -> None:
        """Per-batch accounting of one :class:`~repro.engine.
        ExecutionEngine` execution, labelled by the backend that
        actually ran it (``serial`` / ``threads`` / ``processes`` —
        the *resolved* backend, so an ``auto`` engine's policy mix is
        directly visible)."""
        labels = {"backend": backend}
        self.registry.counter(
            ENGINE_BATCHES,
            labels=labels,
            help="Batches executed by the execution engine, by backend.",
        ).inc()
        self.registry.counter(
            ENGINE_QUERIES,
            labels=labels,
            help="Queries executed by the execution engine, by backend.",
        ).inc(int(queries))
        self.registry.histogram(
            ENGINE_BATCH_SECONDS,
            buckets=LATENCY_BUCKETS,
            labels=labels,
            help="End-to-end engine batch latency, by backend.",
        ).observe(duration)

    def record_engine_fallback(self, reason: str) -> None:
        """The engine abandoned its process pool mid-dispatch (worker
        crash, injected fault) and degraded to in-process execution."""
        self.registry.counter(
            ENGINE_FALLBACKS,
            labels={"reason": reason},
            help="Process-backend dispatches degraded to in-process "
            "execution, by failure reason.",
        ).inc()

    def record_engine_arena(self, nbytes: int, segments: int) -> None:
        """Current shared-memory arena footprint of live engines."""
        self.registry.gauge(
            ENGINE_ARENA_BYTES,
            help="Bytes currently held in shared-memory index arenas.",
        ).inc(nbytes)
        self.registry.gauge(
            ENGINE_ARENA_SEGMENTS,
            help="Live shared-memory segments backing index arenas.",
        ).inc(segments)

    def record_kernel_batch(
        self, backend: str, invocations: Mapping[str, int], compile_seconds: float
    ) -> None:
        """Per-batch accounting of one compiled-path execution.

        *invocations* maps kernel name to the number of calls this
        batch made (a delta, not a running total); *backend* is the
        live kernel backend (``"numba"`` / ``"numpy"``);
        *compile_seconds* is the process-cumulative JIT warm-up cost
        (0.0 on the fallback), published as a gauge so dashboards can
        subtract the one-time compile from steady-state latency.
        """
        reg = self.registry
        for kernel, calls in invocations.items():
            if calls:
                reg.counter(
                    KERNEL_INVOCATIONS,
                    labels={"kernel": kernel, "backend": backend},
                    help="Hot-path kernel invocations, by kernel and "
                    "backend.",
                ).inc(int(calls))
        reg.gauge(
            KERNEL_COMPILE_SECONDS,
            help="Cumulative JIT warm-up (compile) seconds of this "
            "process (0 on the NumPy fallback).",
        ).set(float(compile_seconds))
        reg.gauge(
            KERNEL_FALLBACK_ACTIVE,
            help="1 while the pure-NumPy fallback kernels serve the "
            "compiled path (numba absent or disabled), else 0.",
        ).set(0.0 if backend == "numba" else 1.0)

    def record_cache_batch(
        self,
        *,
        hits: int,
        misses: int,
        evictions: int,
        invalidated: int,
        flushes: int,
        bytes_resident: int,
        entries: int,
    ) -> None:
        """Per-execute accounting of a :class:`~repro.cache.
        CachingExecutor` batch: hit/miss/eviction/invalidation **deltas**
        for this execution plus the current residency gauges."""
        reg = self.registry
        if hits:
            reg.counter(
                CACHE_HITS, help="Result-tier cache hits."
            ).inc(int(hits))
        if misses:
            reg.counter(
                CACHE_MISSES, help="Result-tier cache misses."
            ).inc(int(misses))
        if evictions:
            reg.counter(
                CACHE_EVICTIONS, help="Result-tier LRU evictions."
            ).inc(int(evictions))
        if invalidated:
            reg.counter(
                CACHE_INVALIDATIONS,
                help="Cache entries dropped by invalidation.",
            ).inc(int(invalidated))
        if flushes:
            reg.counter(
                CACHE_FLUSHES,
                help="Full cache flushes (backend swap, lost history, "
                "failed selective invalidation).",
            ).inc(int(flushes))
        reg.gauge(
            CACHE_BYTES, help="Bytes resident in the result tier."
        ).set(int(bytes_resident))
        reg.gauge(
            CACHE_ENTRIES, help="Entries resident in the result tier."
        ).set(int(entries))

    def record_net_connection(self, delta: int) -> None:
        """A network connection opened (``+1``) or closed (``-1``)."""
        if delta > 0:
            self.registry.counter(
                NET_CONNECTIONS,
                help="TCP connections accepted by the query server.",
            ).inc(delta)
        self.registry.gauge(
            NET_CONNECTIONS_ACTIVE,
            help="Currently open query-server connections.",
        ).inc(delta)

    def record_net_request(self, status: str, duration: float) -> None:
        """One wire request finished with *status* (the protocol-level
        outcome: ``ok`` or an error-code name in lowercase).  Statuses
        with a dedicated shedding counter (deadline drops, overload,
        admission rejections) bump that series too, so the tests and
        dashboards that watch a single control each have one number."""
        self.registry.counter(
            NET_REQUESTS,
            labels={"status": status},
            help="Wire requests answered, by protocol status.",
        ).inc()
        self.registry.histogram(
            NET_REQUEST_SECONDS,
            buckets=LATENCY_BUCKETS,
            labels={"status": status},
            help="Server-side request latency (decode to response write).",
        ).observe(duration)
        if status == "deadline_exceeded":
            self.registry.counter(
                NET_DEADLINE_DROPPED,
                help="Queries dropped unexecuted after their propagated "
                "client deadline expired.",
            ).inc()
        elif status == "overload":
            self.registry.counter(
                NET_OVERLOAD_SHED,
                help="Queries shed with a typed OVERLOAD response.",
            ).inc()
        elif status == "rate_limited":
            self.registry.counter(
                NET_ADMISSION_REJECTED,
                help="Queries rejected by per-tenant token-bucket "
                "admission.",
            ).inc()

    def record_net_decode_error(self) -> None:
        """A received frame failed to decode (malformed, oversized,
        wrong magic/version, or an injected ``net.decode`` fault)."""
        self.registry.counter(
            NET_DECODE_ERRORS,
            help="Received frames that failed to decode.",
        ).inc()

    def record_planner_decision(
        self, plan_keys: Iterable[str], source: str, *, split: bool = False
    ) -> None:
        """One planner decision: the chosen plan key(s) (two for a
        split, labelled by sub-plan) and how the plan was picked
        (``model`` / ``prior`` / ``explore``)."""
        for key in plan_keys:
            self.registry.counter(
                PLANNER_DECISIONS,
                labels={"plan": key, "source": source},
                help="Planner decisions, by chosen plan and decision "
                "source.",
            ).inc()
        if split:
            self.registry.counter(
                PLANNER_SPLITS,
                help="Batches the planner split by extent threshold.",
            ).inc()

    def record_planner_cost_error(self, rel_error: float) -> None:
        """Predicted-vs-observed relative cost error of one batch."""
        self.registry.histogram(
            PLANNER_COST_ERROR,
            buckets=COST_ERROR_BUCKETS,
            help="Relative error |observed - predicted| / observed of "
            "the planner's cost predictions.",
        ).observe(float(rel_error))

    def record_planner_exploration(self) -> None:
        self.registry.counter(
            PLANNER_EXPLORATIONS,
            help="Planner decisions taken as epsilon-greedy exploration "
            "probes.",
        ).inc()

    def record_planner_calibration_age(self, seconds: float) -> None:
        self.registry.gauge(
            PLANNER_CALIBRATION_AGE,
            help="Seconds since the planner's cost model was calibrated.",
        ).set(float(seconds))

    def record_planner_fallback(self, reason: str) -> None:
        """The planner failed to decide and the batch degraded to the
        static ``auto-static`` policy (no batch is ever lost)."""
        self.registry.counter(
            PLANNER_FALLBACKS,
            labels={"reason": reason},
            help="Batches degraded to the auto-static policy after a "
            "planner failure, by reason.",
        ).inc()

    def record_fault(self, site: str, action: str) -> None:
        self.registry.counter(
            FAULTS_INJECTED,
            labels={"site": site, "action": action},
            help="Faults fired by an installed FaultPlan, by site/action.",
        ).inc()


# --------------------------------------------------------------------- #
# the module-level gate
# --------------------------------------------------------------------- #

_lock = threading.Lock()
_active: Optional[Observability] = None


def configure(
    enabled: bool = True,
    *,
    trace_partitions: bool = False,
    span_capacity: int = 4096,
    slow_threshold_s: float = 0.1,
    slow_overrides: Optional[Mapping[str, float]] = None,
    trace_sample_rate: float = 1.0,
) -> Optional[Observability]:
    """(Re)configure the plane; returns the live plane or ``None``.

    ``configure(enabled=True)`` installs a **fresh** registry and
    recorder (previous series are dropped — snapshot first if you need
    them); ``configure(enabled=False)`` tears the plane down, returning
    every hook site to its zero-cost path.  ``trace_sample_rate`` is the
    head-based sampling probability applied to traces born at the query
    server (see :meth:`Observability.sample_trace`).
    """
    global _active
    with _lock:
        if not enabled:
            _active = None
            return None
        _active = Observability(
            ObsConfig(
                enabled=True,
                trace_partitions=trace_partitions,
                span_capacity=span_capacity,
                slow_threshold_s=slow_threshold_s,
                slow_overrides=slow_overrides,
                trace_sample_rate=trace_sample_rate,
            )
        )
        return _active


def active() -> Optional[Observability]:
    """The live plane, or ``None`` when disabled — THE hot-path gate."""
    return _active


def enabled() -> bool:
    return _active is not None


def registry() -> MetricsRegistry:
    """The live registry; raises when the plane is disabled."""
    ob = _active
    if ob is None:
        raise RuntimeError("observability is disabled; call obs.configure() first")
    return ob.registry


def recorder() -> SpanRecorder:
    """The live span recorder; raises when the plane is disabled."""
    ob = _active
    if ob is None:
        raise RuntimeError("observability is disabled; call obs.configure() first")
    return ob.recorder


def reset() -> None:
    """Drop all recorded series and spans, keeping the configuration."""
    global _active
    with _lock:
        if _active is not None:
            _active = Observability(_active.config)


def snapshot(*, meta: Optional[dict] = None) -> dict:
    """JSON-able snapshot of the live plane (metrics + spans)."""
    ob = _active
    if ob is None:
        raise RuntimeError("observability is disabled; call obs.configure() first")
    return snapshot_dict(ob.registry, ob.recorder, meta=meta)


def render(*, meta: Optional[dict] = None) -> str:
    """Human-readable table of the live plane."""
    return render_table(snapshot(meta=meta))


def prometheus() -> str:
    """Prometheus text exposition of the live registry."""
    return to_prometheus(registry())
