"""Trace context: the request identity that crosses every boundary.

A :class:`TraceContext` is the compact W3C-traceparent-style triple
``(trace_id, parent_span_id, sampled)`` that links one client request to
every span it causes — across threads (net event loop → service flusher)
and across processes (engine parent → pool workers).  It travels:

* **on the wire** as an optional 17-byte field of a protocol-v2 QUERY
  frame (:mod:`repro.net.protocol`), so a client-chosen ``trace_id``
  reappears on every server-side span of that request;
* **through the service** on each staged query
  (:class:`~repro.service.BatchingQueryService` keeps it on the pending
  entry), and into the flusher thread via
  :meth:`~repro.obs.spans.SpanRecorder.trace_scope`;
* **into pool workers** as part of the per-task telemetry request — the
  worker tags its strategy spans with the same trace ids and ships the
  sampled ones back (:mod:`repro.obs.aggregate`).

Because one *flush* answers many requests, spans carry a **set** of
trace ids (``Span.trace_ids``) rather than a single one: the span tree
of trace ``T`` is all spans containing ``T``, parented by ``parent_id``
where the parent is also in ``T`` — :func:`build_trace_tree` performs
that reconstruction, and :mod:`repro.obs.chrome_trace` renders it.

This module is dependency-free on purpose: the wire protocol imports it
without dragging in the rest of the observability plane.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

__all__ = [
    "TraceContext",
    "WIRE_SIZE",
    "new_trace_id",
    "format_trace_id",
    "parse_trace_id",
    "build_trace_tree",
    "render_trace_tree",
    "list_traces",
]

_WIRE = struct.Struct(">QQB")  # trace_id, parent_span_id, flags
_FLAG_SAMPLED = 0x01
_U64_MASK = (1 << 64) - 1

#: Encoded byte size of one context on the wire.
WIRE_SIZE = _WIRE.size


def new_trace_id(rng: Optional[random.Random] = None) -> int:
    """A fresh nonzero 64-bit trace id."""
    r = rng if rng is not None else random
    while True:
        tid = r.getrandbits(64)
        if tid:
            return tid


def format_trace_id(trace_id: int) -> str:
    """Canonical hex rendering (16 lowercase hex digits)."""
    return f"{int(trace_id) & _U64_MASK:016x}"


def parse_trace_id(text: str) -> int:
    """Inverse of :func:`format_trace_id`; accepts bare decimal too."""
    text = text.strip().lower()
    if text.startswith("0x"):
        text = text[2:]
    try:
        value = int(text, 16)
    except ValueError:
        raise ValueError(f"not a trace id: {text!r}") from None
    if not 0 < value <= _U64_MASK:
        raise ValueError(f"trace id out of u64 range: {text!r}")
    return value


@dataclass(frozen=True)
class TraceContext:
    """One request's tracing identity, as propagated between layers.

    ``trace_id``
        Nonzero 64-bit id shared by every span of the request.
    ``parent_span_id``
        Span id of the nearest enclosing span in the *sending* process
        (0 = no parent): a client stamps its own span, the server
        stamps the ``net.request`` root for everything downstream.
    ``sampled``
        Head-based sampling verdict.  Unsampled traces are still tagged
        locally (the ring retains everything while the plane is on) but
        workers only ship their spans for sampled traces — except spans
        that are slow or errored, which always ship.
    """

    trace_id: int
    parent_span_id: int = 0
    sampled: bool = True

    def __post_init__(self):
        if not 0 < int(self.trace_id) <= _U64_MASK:
            raise ValueError(f"trace_id must be a nonzero u64: {self.trace_id}")
        if not 0 <= int(self.parent_span_id) <= _U64_MASK:
            raise ValueError(
                f"parent_span_id out of u64 range: {self.parent_span_id}"
            )

    def child(self, parent_span_id: int) -> "TraceContext":
        """The same trace, re-parented under *parent_span_id*."""
        return TraceContext(self.trace_id, int(parent_span_id), self.sampled)

    def to_wire(self) -> bytes:
        """The 17-byte wire encoding (:data:`WIRE_SIZE`)."""
        flags = _FLAG_SAMPLED if self.sampled else 0
        return _WIRE.pack(int(self.trace_id), int(self.parent_span_id), flags)

    @classmethod
    def from_wire(cls, data: bytes) -> "TraceContext":
        """Decode :meth:`to_wire` output; raises ``ValueError`` on any
        violation (the protocol layer maps that to ``ProtocolError``)."""
        if len(data) != WIRE_SIZE:
            raise ValueError(
                f"trace context must be {WIRE_SIZE} bytes, got {len(data)}"
            )
        trace_id, parent, flags = _WIRE.unpack(data)
        if flags & ~_FLAG_SAMPLED:
            raise ValueError(f"unknown trace flags 0x{flags:02X}")
        return cls(trace_id, parent, bool(flags & _FLAG_SAMPLED))

    def __repr__(self) -> str:
        return (
            f"TraceContext({format_trace_id(self.trace_id)}, "
            f"parent={self.parent_span_id}, sampled={self.sampled})"
        )


# --------------------------------------------------------------------- #
# trace reconstruction (over span state dicts)
# --------------------------------------------------------------------- #


def _in_trace(state: dict, trace_id: int) -> bool:
    return trace_id in state.get("trace_ids", ())


def build_trace_tree(
    span_states: Iterable[dict], trace_id: int
) -> Optional[dict]:
    """Reconstruct trace *trace_id* as one parented tree.

    Input is span ``state()`` dicts (e.g. a snapshot's ``spans.recent``
    section, or merged parent+worker spans).  Membership is by
    ``trace_ids``; a member parents under its ``parent_id`` when that
    span is also a member, otherwise it attaches under the trace root.
    The root is the earliest-started member named ``net.request`` when
    one exists (the wire entry point), else the earliest parentless
    member.  Returns the root node — each node is the state dict plus a
    ``children`` list sorted by start time — or ``None`` when the trace
    has no spans.
    """
    members = [s for s in span_states if _in_trace(s, trace_id)]
    if not members:
        return None
    members.sort(key=lambda s: (s.get("started", 0.0), s.get("span_id", 0)))
    nodes: Dict[int, dict] = {}
    for state in members:
        node = dict(state)
        node["children"] = []
        nodes[state["span_id"]] = node
    roots: List[dict] = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id"))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    if len(roots) == 1:
        return roots[0]
    primary = next(
        (r for r in roots if r["name"] == "net.request"), roots[0]
    )
    for node in roots:
        if node is not primary:
            primary["children"].append(node)
    return primary


def render_trace_tree(root: dict, *, indent: int = 0) -> str:
    """Indented text rendering of a :func:`build_trace_tree` tree."""
    pid = root.get("pid")
    where = f" pid={pid}" if pid is not None else ""
    attrs = {
        k: v for k, v in root.get("attrs", {}).items() if k != "trace_id"
    }
    line = (
        f"{'  ' * indent}{root['name']} "
        f"{root.get('duration', 0.0) * 1000:.3f}ms{where}"
        + (f" {attrs}" if attrs else "")
    )
    parts = [line]
    for child in root.get("children", ()):
        parts.append(render_trace_tree(child, indent=indent + 1))
    return "\n".join(parts)


def list_traces(span_states: Iterable[dict]) -> List[dict]:
    """Summarize every trace present in *span_states*.

    Returns one ``{"trace_id", "trace", "spans", "root", "duration",
    "started"}`` dict per distinct trace id (``trace`` is the hex form),
    most recently started first.
    """
    by_trace: Dict[int, List[dict]] = {}
    for state in span_states:
        for tid in state.get("trace_ids", ()):
            by_trace.setdefault(int(tid), []).append(state)
    out = []
    for tid, members in by_trace.items():
        root = build_trace_tree(members, tid)
        out.append(
            {
                "trace_id": tid,
                "trace": format_trace_id(tid),
                "spans": len(members),
                "root": root["name"] if root else "?",
                "duration": root.get("duration", 0.0) if root else 0.0,
                "started": min(s.get("started", 0.0) for s in members),
            }
        )
    out.sort(key=lambda t: t["started"], reverse=True)
    return out
