"""Cross-process telemetry aggregation.

Process-pool workers (:mod:`repro.engine.worker`) cannot write into the
parent's :class:`~repro.obs.metrics.MetricsRegistry` — under the
``processes`` backend each worker has its own plane, and before this
module its measurements simply vanished.  The fix is delta shipping:

1. the worker runs its task under a **fresh per-task plane** and, when
   the parent requested telemetry, packs everything it recorded into a
   compact :func:`telemetry_delta` — counter increments, histogram
   bucket deltas, gauge values and a bounded set of sampled spans;
2. the delta rides back piggybacked on the task's result payload
   (a second tuple element — no extra IPC round trip);
3. the parent calls :func:`merge_telemetry`, folding the deltas into
   the global registry under a ``worker=<pid>`` label and grafting the
   shipped spans beneath the dispatching ``engine.execute`` span via
   :meth:`~repro.obs.spans.SpanRecorder.adopt`.

Merged series stay truthful: counters add, histograms merge per-bucket
(:meth:`~repro.obs.metrics.Histogram.merge_counts`), and adopted spans
do not re-observe the latency histogram (the worker's own histogram
delta already carries those observations).

Span shipping follows the head-based sampling policy: spans tagged with
a sampled trace always ship; untagged spans ship only when slow or
errored (``attrs["error"]``), so an unsampled burst costs no span
traffic but never hides a problem.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "DELTA_VERSION",
    "capture_baseline",
    "telemetry_delta",
    "merge_telemetry",
]

#: Schema version of the delta dict (bump on layout changes).
DELTA_VERSION = 1

_LabelsKey = Tuple[Tuple[str, str], ...]


def capture_baseline(registry: MetricsRegistry) -> dict:
    """Snapshot counter/histogram positions to diff a later delta against.

    Workers normally start each task on a fresh registry (empty
    baseline), but long-lived planes can baseline before the work and
    ship only what the task added.
    """
    counters: Dict[Tuple[str, _LabelsKey], int] = {}
    histograms: Dict[Tuple[str, _LabelsKey], Tuple[List[int], float, int]] = {}
    for metric in registry.collect():
        key = (metric.name, metric.labels)
        if metric.kind == "counter":
            counters[key] = metric.value
        elif metric.kind == "histogram":
            state = metric.state()
            histograms[key] = (state["counts"], state["sum"], state["count"])
    return {"counters": counters, "histograms": histograms}


_EMPTY_BASELINE = {"counters": {}, "histograms": {}}


def telemetry_delta(
    registry: MetricsRegistry,
    baseline: Optional[dict] = None,
    *,
    recorder=None,
    trace_ids: Sequence[int] = (),
    max_spans: int = 64,
) -> Optional[dict]:
    """Pack what *registry*/*recorder* accumulated since *baseline*.

    Returns a plain picklable dict (or ``None`` when nothing happened):
    ``{"v", "counters": [(name, labels, delta)], "histograms":
    [(name, labels, buckets, bucket_deltas, sum_delta, count_delta)],
    "gauges": [(name, labels, value)], "spans": [state...]}``.

    Spans are filtered by the sampling policy (member of a trace in
    *trace_ids*, or slow, or errored) and capped at *max_spans*,
    keeping the longest ones.
    """
    base = baseline if baseline is not None else _EMPTY_BASELINE
    counters = []
    histograms = []
    gauges = []
    for metric in registry.collect():
        key = (metric.name, metric.labels)
        if metric.kind == "counter":
            delta = metric.value - base["counters"].get(key, 0)
            if delta > 0:
                counters.append((metric.name, metric.labels, delta))
        elif metric.kind == "histogram":
            state = metric.state()
            b_counts, b_sum, b_count = base["histograms"].get(
                key, ([0] * len(state["counts"]), 0.0, 0)
            )
            d_count = state["count"] - b_count
            if d_count > 0:
                histograms.append(
                    (
                        metric.name,
                        metric.labels,
                        state["buckets"],
                        [c - b for c, b in zip(state["counts"], b_counts)],
                        state["sum"] - b_sum,
                        d_count,
                    )
                )
        elif metric.kind == "gauge":
            gauges.append((metric.name, metric.labels, metric.value))
    spans: List[dict] = []
    if recorder is not None:
        wanted = {int(t) for t in trace_ids}
        candidates = []
        for sp in recorder.spans():
            sampled = bool(wanted.intersection(sp.trace_ids))
            slow = sp.duration >= recorder.slow_overrides.get(
                sp.name, recorder.slow_threshold_s
            )
            errored = "error" in sp.attrs
            if sampled or slow or errored:
                candidates.append(sp)
        if len(candidates) > max_spans:
            candidates = sorted(
                candidates, key=lambda sp: sp.duration, reverse=True
            )[:max_spans]
            candidates.sort(key=lambda sp: sp.started)
        spans = [sp.state() for sp in candidates]
    if not (counters or histograms or gauges or spans):
        return None
    return {
        "v": DELTA_VERSION,
        "counters": counters,
        "histograms": histograms,
        "gauges": gauges,
        "spans": spans,
    }


def merge_telemetry(
    ob,
    delta: Optional[dict],
    *,
    worker_label: str,
    parent_span_id: Optional[int] = None,
) -> None:
    """Fold one worker's :func:`telemetry_delta` into the live plane *ob*.

    Every merged series gains a ``worker=<worker_label>`` label so the
    parent's own measurements and each worker's stay distinguishable
    (sum across the label for totals, as the parity tests do).  Shipped
    spans are grafted under *parent_span_id* — normally the in-flight
    ``engine.execute`` span of the dispatching batch.
    """
    if not delta:
        return
    if delta.get("v") != DELTA_VERSION:
        raise ValueError(f"unknown telemetry delta version: {delta.get('v')!r}")
    reg = ob.registry
    worker = str(worker_label)
    for name, labels, value in delta.get("counters", ()):
        reg.counter(
            name, labels={**dict(labels), "worker": worker}
        ).inc(int(value))
    for name, labels, buckets, counts, sum_, count in delta.get(
        "histograms", ()
    ):
        reg.histogram(
            name,
            buckets=buckets,
            labels={**dict(labels), "worker": worker},
        ).merge_counts(counts, sum_, count)
    for name, labels, value in delta.get("gauges", ()):
        reg.gauge(
            name, labels={**dict(labels), "worker": worker}
        ).set(value)
    if delta.get("spans"):
        ob.recorder.adopt(delta["spans"], parent_id=parent_span_id)
    from repro.obs import WORKER_MERGES  # local import: avoid cycle

    reg.counter(
        WORKER_MERGES,
        labels={"worker": worker},
        help="Worker telemetry deltas merged into the parent registry.",
    ).inc()
