"""`top`-style live terminal dashboard over plane snapshots.

:func:`render_dashboard` is pure — it turns one exporter snapshot (and
optionally the previous one, for rates) into fixed-width text: request
throughput and shed/drop rates, p50/p99 latency per layer (from the
``repro_span_seconds`` histograms, so every instrumented layer shows up
automatically), cache hit rate, arena residency, connection and span
counts, and any published ``repro_slo_*`` verdicts.  :func:`run_top`
is the terminal loop around it (ANSI clear + redraw), which ``python -m
repro.cli top`` wires to the shell — pointable at a live in-process
plane or at a ``--json`` snapshot file another process keeps rewriting.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Iterable, List, Optional

from repro.obs.export import _hist_quantile

__all__ = ["render_dashboard", "run_top"]

#: Span-latency layers shown in the latency table, display order.
LAYERS = (
    "net.request",
    "service.flush",
    "engine.execute",
    "shard.execute",
    "cache.execute",
    "strategy.batch",
    "parallel.chunk",
    "shard.batch",
)

_CLEAR = "\x1b[2J\x1b[H"


def _metrics(snapshot: dict) -> dict:
    return snapshot.get("metrics", snapshot)


def _counter_total(metrics: dict, name: str, **labels) -> int:
    total = 0
    for entry in metrics.get("counters", ()):
        if entry["name"] != name:
            continue
        have = entry.get("labels", {})
        if all(str(have.get(k)) == str(v) for k, v in labels.items()):
            total += entry["value"]
    return total


def _gauge_entries(metrics: dict, name: str) -> List[dict]:
    return [e for e in metrics.get("gauges", ()) if e["name"] == name]


def _gauge_total(metrics: dict, name: str) -> Optional[float]:
    entries = _gauge_entries(metrics, name)
    if not entries:
        return None
    return sum(e["value"] for e in entries)


def _span_hist(metrics: dict, span: str) -> Optional[dict]:
    for entry in metrics.get("histograms", ()):
        if (
            entry["name"] == "repro_span_seconds"
            and entry.get("labels", {}).get("span") == span
        ):
            return entry
    return None


def _fmt_ms(value: Optional[float]) -> str:
    return f"{value * 1000:8.2f}" if value is not None else "       -"


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GiB"


def render_dashboard(
    snapshot: dict,
    prev: Optional[dict] = None,
    *,
    interval: Optional[float] = None,
) -> str:
    """One dashboard frame from a snapshot (rates need *prev* too)."""
    m = _metrics(snapshot)
    pm = _metrics(prev) if prev is not None else None
    lines: List[str] = []

    def rate(name: str) -> str:
        total = _counter_total(m, name)
        if pm is not None and interval:
            delta = total - _counter_total(pm, name)
            return f"{delta / interval:9.1f}/s ({total} total)"
        return f"{total:9d} total"

    lines.append("repro · live plane")
    lines.append("")
    lines.append(f"  requests   {rate('repro_net_requests_total')}")
    lines.append(f"  ok         {_counter_total(m, 'repro_net_requests_total', status='ok'):9d}")
    lines.append(f"  shed       {_counter_total(m, 'repro_net_overload_shed_total'):9d}"
                 f"   deadline-dropped {_counter_total(m, 'repro_net_deadline_dropped_total')}"
                 f"   rate-limited {_counter_total(m, 'repro_net_admission_rejected_total')}")
    conns = _gauge_total(m, "repro_net_connections_active")
    if conns is not None:
        lines.append(f"  conns      {int(conns):9d} active")

    lines.append("")
    lines.append(f"  {'layer':<16} {'count':>8} {'p50 ms':>8} {'p99 ms':>8}")
    for layer in LAYERS:
        entry = _span_hist(m, layer)
        if entry is None or not entry["count"]:
            continue
        lines.append(
            f"  {layer:<16} {entry['count']:>8}"
            f" {_fmt_ms(_hist_quantile(entry, 0.5))}"
            f" {_fmt_ms(_hist_quantile(entry, 0.99))}"
        )

    hits = _counter_total(m, "repro_cache_hits_total")
    misses = _counter_total(m, "repro_cache_misses_total")
    if hits or misses:
        lines.append("")
        lines.append(
            f"  cache      {hits / (hits + misses) * 100:6.1f}% hit"
            f"   ({hits} hit / {misses} miss)"
        )
    arena = _gauge_total(m, "repro_engine_arena_bytes")
    if arena:
        lines.append(f"  arena      {_fmt_bytes(arena)} shared-memory resident")
    merges = _counter_total(m, "repro_worker_telemetry_merges_total")
    if merges:
        lines.append(f"  workers    {merges} telemetry deltas merged")

    slo_rows = []
    for entry in _gauge_entries(m, "repro_slo_error_budget_burn_rate"):
        slo = entry.get("labels", {}).get("slo", "?")
        burn = entry["value"]
        flag = "OK " if burn <= 1.0 else "HOT"
        slo_rows.append(f"  slo [{flag}] {slo:<20} burn {burn:6.2f}x")
    if slo_rows:
        lines.append("")
        lines.extend(slo_rows)

    spans = snapshot.get("spans")
    if spans:
        lines.append("")
        lines.append(
            f"  spans      {spans.get('finished', 0)} finished, "
            f"{spans.get('dropped', 0)} dropped, "
            f"{len(spans.get('slow', ()))} slow"
        )
    return "\n".join(lines)


def run_top(
    fetch: Callable[[], dict],
    *,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    out=None,
    clear: bool = True,
) -> int:
    """The dashboard loop: fetch → render → redraw, every *interval* s.

    *fetch* returns a fresh snapshot dict each call (live plane, HTTP
    endpoint, or re-read file).  *iterations* bounds the loop (None =
    until ``KeyboardInterrupt``).  Returns the number of frames drawn.
    """
    out = out if out is not None else sys.stdout
    prev: Optional[dict] = None
    drawn = 0
    try:
        while iterations is None or drawn < iterations:
            snap = fetch()
            frame = render_dashboard(snap, prev, interval=interval)
            if clear:
                out.write(_CLEAR)
            out.write(frame + "\n")
            out.flush()
            prev = snap
            drawn += 1
            if iterations is not None and drawn >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return drawn
