"""Service-level objectives over the observability plane.

An :class:`SLObjective` states the promise ("p99 of server-side request
latency stays under 50 ms, with at most 1 % of requests over budget");
an :class:`SLOTracker` evaluates a set of them against the metric
histograms the plane already collects — no extra instrumentation in the
request path — and surfaces three things:

* ``repro_slo_*`` **series** in the live registry (published quantile,
  target, and error-budget burn rate per objective), so the Prometheus
  and JSON exporters carry the SLO verdicts next to the raw data;
* a **burn rate**: the fraction of requests over the latency target
  divided by the budgeted fraction.  Burn 1.0 means spending the error
  budget exactly as fast as allowed; 2.0 means the budget is gone in
  half the window — the standard multi-window alert signal;
* a bounded **structured violation log** (one dict per evaluation that
  found an objective violating, with the numbers that mattered), plus
  :func:`slow_requests` pulling the slow ``net.request`` spans straight
  from the recorder's slow log for the "which requests, exactly?"
  follow-up.

Evaluation is pure over a metrics snapshot (testable without a live
plane); :meth:`SLOTracker.observe` is the live wrapper that snapshots,
evaluates and publishes in one call.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs.export import _hist_quantile

__all__ = [
    "SLObjective",
    "SLOTracker",
    "merge_histogram_entries",
    "slow_requests",
]


@dataclass(frozen=True)
class SLObjective:
    """One latency promise evaluated from an existing histogram."""

    name: str = "request-latency"
    #: Histogram series the objective is computed from (summed across
    #: its label sets, e.g. all ``status`` values of net requests).
    metric: str = "repro_net_request_seconds"
    #: Latency quantile published for dashboards (p99 by default).
    quantile: float = 0.99
    #: The latency target in seconds.
    target_s: float = 0.050
    #: Budgeted fraction of requests allowed over the target.
    error_budget: float = 0.01

    def __post_init__(self):
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must lie in (0, 1)")
        if self.target_s <= 0:
            raise ValueError("target_s must be positive")
        if not 0.0 < self.error_budget < 1.0:
            raise ValueError("error_budget must lie in (0, 1)")


def merge_histogram_entries(entries: Sequence[dict]) -> Optional[dict]:
    """Sum same-bucket histogram snapshot entries into one entry.

    The plane records one histogram per label set (``status``,
    ``worker``...); an SLO is about *all* requests, so the bucket
    counts are added element-wise.  Entries with mismatched bounds are
    skipped (cannot be summed meaningfully).
    """
    merged: Optional[dict] = None
    for entry in entries:
        if merged is None:
            merged = {
                "name": entry["name"],
                "labels": {},
                "buckets": list(entry["buckets"]),
                "counts": list(entry["counts"]),
                "sum": float(entry["sum"]),
                "count": int(entry["count"]),
            }
            continue
        if list(entry["buckets"]) != merged["buckets"]:
            continue
        merged["counts"] = [
            a + b for a, b in zip(merged["counts"], entry["counts"])
        ]
        merged["sum"] += float(entry["sum"])
        merged["count"] += int(entry["count"])
    return merged


def _fraction_over(entry: dict, target_s: float) -> float:
    """Fraction of observations above *target_s* (bucket-interpolated)."""
    total = entry["count"]
    if not total:
        return 0.0
    below = 0.0
    lower = 0.0
    bounds = entry["buckets"]
    for pos, count in enumerate(entry["counts"]):
        upper = bounds[pos] if pos < len(bounds) else float("inf")
        if target_s >= upper:
            below += count
        elif target_s > lower and upper != float("inf"):
            below += count * (target_s - lower) / (upper - lower)
        elif target_s > lower:
            below += count  # target beyond the last finite bound
        lower = upper
    return max(0.0, min(1.0, (total - below) / total))


class SLOTracker:
    """Evaluate objectives against snapshots; publish ``repro_slo_*``.

    Parameters
    ----------
    objectives:
        The promises to track.
    log_capacity:
        Bound of the structured violation log.
    wall_clock, monotonic_clock:
        Injectable time sources (defaults: :func:`time.time` and
        :func:`time.monotonic`).  Violation log entries record *both*
        — the wall reading (``"at"``) for humans correlating with
        external logs, the monotonic reading (``"monotonic"``) for
        ordering and interval arithmetic, since the two clocks must
        never be mixed (wall time jumps on NTP steps).  Tests inject
        fake clocks to make the log fully deterministic.
    """

    def __init__(
        self,
        objectives: Sequence[SLObjective] = (SLObjective(),),
        *,
        log_capacity: int = 256,
        wall_clock=None,
        monotonic_clock=None,
    ):
        if not objectives:
            raise ValueError("need at least one objective")
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"objective names must be unique: {names}")
        self.objectives = tuple(objectives)
        self._violations: deque = deque(maxlen=int(log_capacity))
        self._wall_clock = wall_clock if wall_clock is not None else time.time
        self._monotonic_clock = (
            monotonic_clock if monotonic_clock is not None else time.monotonic
        )

    # ------------------------------------------------------------------ #
    # pure evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, metrics: dict) -> List[dict]:
        """Evaluate every objective over a registry snapshot.

        *metrics* is ``MetricsRegistry.snapshot()`` output (or the
        ``"metrics"`` section of an exporter snapshot).  Returns one
        result dict per objective: ``{"slo", "metric", "count",
        "quantile", "value", "target_s", "violating_fraction",
        "burn_rate", "ok"}`` — ``value`` is None with no data yet.
        """
        by_name: Dict[str, List[dict]] = {}
        for entry in metrics.get("histograms", ()):
            by_name.setdefault(entry["name"], []).append(entry)
        results = []
        for obj in self.objectives:
            merged = merge_histogram_entries(by_name.get(obj.metric, ()))
            if merged is None or not merged["count"]:
                results.append(
                    {
                        "slo": obj.name,
                        "metric": obj.metric,
                        "count": 0,
                        "quantile": obj.quantile,
                        "value": None,
                        "target_s": obj.target_s,
                        "violating_fraction": 0.0,
                        "burn_rate": 0.0,
                        "ok": True,
                    }
                )
                continue
            value = _hist_quantile(merged, obj.quantile)
            over = _fraction_over(merged, obj.target_s)
            burn = over / obj.error_budget
            results.append(
                {
                    "slo": obj.name,
                    "metric": obj.metric,
                    "count": merged["count"],
                    "quantile": obj.quantile,
                    "value": value,
                    "target_s": obj.target_s,
                    "violating_fraction": over,
                    "burn_rate": burn,
                    "ok": burn <= 1.0,
                }
            )
        return results

    # ------------------------------------------------------------------ #
    # live plane integration
    # ------------------------------------------------------------------ #

    def observe(self, ob, *, now: Optional[float] = None) -> List[dict]:
        """Snapshot the live plane *ob*, evaluate, publish, log.

        Publishes per-objective gauges (quantile value, target, burn
        rate) and bumps ``repro_slo_violations_total`` for objectives
        found violating; violating evaluations are appended to the
        structured log (:meth:`violations`).
        """
        from repro import obs as obs_mod

        results = self.evaluate(ob.registry.snapshot())
        reg = ob.registry
        for res in results:
            labels = {"slo": res["slo"]}
            if res["value"] is not None:
                reg.gauge(
                    obs_mod.SLO_LATENCY_QUANTILE,
                    labels={**labels, "quantile": res["quantile"]},
                    help="Published latency quantile per objective.",
                ).set(res["value"])
            reg.gauge(
                obs_mod.SLO_LATENCY_TARGET,
                labels=labels,
                help="Latency target per objective.",
            ).set(res["target_s"])
            reg.gauge(
                obs_mod.SLO_BURN_RATE,
                labels=labels,
                help="Error-budget burn rate (1.0 = spending exactly "
                "the budget).",
            ).set(res["burn_rate"])
            if not res["ok"]:
                reg.counter(
                    obs_mod.SLO_VIOLATIONS,
                    labels=labels,
                    help="Evaluations that found the objective violating.",
                ).inc()
                self._violations.append(
                    {
                        "at": now if now is not None else self._wall_clock(),
                        "monotonic": self._monotonic_clock(),
                        **res,
                    }
                )
        return results

    def violations(self) -> List[dict]:
        """The structured violation log, oldest first."""
        return list(self._violations)


def slow_requests(ob, *, limit: int = 32) -> List[dict]:
    """The slowest-request log: slow ``net.request`` spans, newest last.

    Each entry is the span's state dict (tenant, status, query range and
    trace id all live in ``attrs``), pulled from the recorder's bounded
    slow log — the per-request complement to the aggregate burn rate.
    """
    slow = [sp.state() for sp in ob.recorder.slow() if sp.name == "net.request"]
    return slow[-int(limit):]
