"""Metric primitives of the observability plane.

Three metric kinds, matching the Prometheus data model the exporter
(:mod:`repro.obs.export`) renders:

* :class:`Counter` — monotonically increasing count (queries served,
  partitions touched, faults injected);
* :class:`Gauge` — a value that goes both ways (queue depth, buffered
  inserts);
* :class:`Histogram` — fixed-bucket distribution with cumulative bucket
  counts, a sum and a count (flush latency, batch size).

A :class:`MetricsRegistry` owns the metrics: ``counter`` / ``gauge`` /
``histogram`` get-or-create by ``(name, labels)``, so instrumentation
sites never coordinate — two call sites asking for the same series share
one object.  Every mutation takes the metric's own lock; registries are
safe to write from the service flusher, worker pools and client threads
at once, and :meth:`MetricsRegistry.snapshot` produces a plain-data,
JSON-able view without stopping writers.

The registry is deliberately independent of the global on/off gate in
:mod:`repro.obs`: subsystems (e.g. :class:`~repro.analysis.service_stats.
ServiceMetrics`) may own a private registry that works whether or not
the process-wide plane is enabled.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "POW2_BUCKETS",
]

#: Seconds-scale latency buckets (50us .. 10s), used for every duration
#: histogram in the plane.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Power-of-two buckets (1 .. 2**17), used for batch-size histograms.
POW2_BUCKETS: Tuple[float, ...] = tuple(float(1 << i) for i in range(18))

LabelPairs = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Optional[Mapping[str, object]]) -> LabelPairs:
    """Normalize a label mapping into a hashable, sorted key."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared name/labels/lock plumbing of the three metric kinds."""

    kind = "metric"

    def __init__(self, name: str, labels: LabelPairs, help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()

    @property
    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def __repr__(self) -> str:
        labels = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{type(self).__name__}({self.name}{{{labels}}})"


class Counter(_Metric):
    """Monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelPairs, help: str = ""):
        super().__init__(name, labels, help)
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def state(self) -> dict:
        return {
            "name": self.name,
            "labels": self.label_dict,
            "value": self.value,
            "help": self.help,
        }


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelPairs, help: str = ""):
        super().__init__(name, labels, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    def set_max(self, value: float) -> None:
        """Raise the gauge to *value* if it is below it (high-watermark)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def state(self) -> dict:
        return {
            "name": self.name,
            "labels": self.label_dict,
            "value": self.value,
            "help": self.help,
        }


class Histogram(_Metric):
    """Fixed-bucket histogram with a sum and a total count.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches the rest (Prometheus semantics: the
    exporter renders *cumulative* ``le`` counts, this object stores
    per-bucket counts).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelPairs,
        buckets: Sequence[float],
        help: str = "",
    ):
        super().__init__(name, labels, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("the +Inf bucket is implicit; pass finite bounds")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        pos = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[pos] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-interpolated quantile estimate (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return None
        rank = q * total
        seen = 0.0
        lower = 0.0
        for pos, count in enumerate(counts):
            upper = self.bounds[pos] if pos < len(self.bounds) else self.bounds[-1]
            if seen + count >= rank:
                if count == 0:
                    return upper
                frac = (rank - seen) / count
                return lower + frac * (upper - lower)
            seen += count
            lower = upper
        return self.bounds[-1]

    def merge_counts(
        self, counts: Sequence[int], sum_: float, count: int
    ) -> None:
        """Fold another histogram's per-bucket deltas into this one.

        *counts* must align with this histogram's buckets (same bounds
        on both sides — ``len(bounds) + 1`` slots, last is ``+Inf``).
        Used by cross-process aggregation (:mod:`repro.obs.aggregate`)
        to merge worker-shipped bucket deltas without replaying the
        individual observations.
        """
        if len(counts) != len(self._counts):
            raise ValueError(
                f"bucket count mismatch: got {len(counts)}, "
                f"have {len(self._counts)}"
            )
        if count < 0 or any(c < 0 for c in counts):
            raise ValueError("histogram deltas must be non-negative")
        with self._lock:
            for pos, c in enumerate(counts):
                self._counts[pos] += int(c)
            self._sum += float(sum_)
            self._count += int(count)

    def state(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "labels": self.label_dict,
                "buckets": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "help": self.help,
            }


class MetricsRegistry:
    """Thread-safe, get-or-create home of a set of metrics."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, str, LabelPairs], _Metric] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # get-or-create
    # ------------------------------------------------------------------ #

    def _get(self, kind, cls, name, labels, help, **kwargs):
        key = (kind, name, _freeze_labels(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                known = self._kinds.get(name)
                if known is not None and known != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {known}, "
                        f"not {kind}"
                    )
                metric = cls(
                    name, key[2], help=help or self._help.get(name, ""), **kwargs
                )
                self._metrics[key] = metric
                self._kinds[name] = kind
                if help:
                    self._help[name] = help
            return metric

    def counter(
        self,
        name: str,
        *,
        labels: Optional[Mapping[str, object]] = None,
        help: str = "",
    ) -> Counter:
        return self._get("counter", Counter, name, labels, help)

    def gauge(
        self,
        name: str,
        *,
        labels: Optional[Mapping[str, object]] = None,
        help: str = "",
    ) -> Gauge:
        return self._get("gauge", Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labels: Optional[Mapping[str, object]] = None,
        help: str = "",
    ) -> Histogram:
        return self._get(
            "histogram", Histogram, name, labels, help, buckets=buckets
        )

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def collect(self) -> List[_Metric]:
        """All registered metrics, sorted by (name, labels)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted(metrics, key=lambda m: (m.name, m.labels))

    def snapshot(self) -> dict:
        """Plain-data view: ``{"counters": [...], "gauges": [...],
        "histograms": [...]}``, each entry JSON-able."""
        out: Dict[str, List[dict]] = {"counters": [], "gauges": [], "histograms": []}
        for metric in self.collect():
            out[metric.kind + "s"].append(metric.state())
        return out

    def find(self, name: str, **labels) -> Optional[_Metric]:
        """The registered metric with *name* whose labels include
        **labels** (first match in sorted order), or ``None``."""
        wanted = {str(k): str(v) for k, v in labels.items()}
        for metric in self.collect():
            if metric.name != name:
                continue
            have = metric.label_dict
            if all(have.get(k) == v for k, v in wanted.items()):
                return metric
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} series)"
