"""Exporters of the observability plane.

One intermediate representation, three renderings:

* :func:`snapshot_dict` — plain-data snapshot of a registry (and
  optionally a span recorder): the JSON schema scripts consume and the
  input every renderer accepts, so a dump written by ``serve-sim
  --metrics-json`` can later be re-rendered by ``repro stats --input``;
* :func:`to_json` — the snapshot serialized;
* :func:`to_prometheus` — Prometheus text exposition format (counters
  and gauges as samples, histograms as cumulative ``_bucket`` series
  plus ``_sum`` / ``_count``);
* :func:`render_table` — the human-readable table ``repro stats``
  prints.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder

__all__ = [
    "SNAPSHOT_VERSION",
    "snapshot_dict",
    "to_json",
    "to_prometheus",
    "render_table",
]

#: Schema version stamped into every snapshot.
SNAPSHOT_VERSION = 1

#: How many of the most recent spans a snapshot embeds.
RECENT_SPANS = 64


def snapshot_dict(
    registry: MetricsRegistry,
    recorder: Optional[SpanRecorder] = None,
    *,
    meta: Optional[dict] = None,
) -> dict:
    """Plain-data snapshot of the plane (the exporters' common input)."""
    out = {
        "version": SNAPSHOT_VERSION,
        "generated_unix": time.time(),
        "meta": dict(meta or {}),
        "metrics": registry.snapshot(),
    }
    if recorder is not None:
        started, finished, dropped = recorder.counts()
        out["spans"] = {
            "capacity": recorder.capacity,
            "started": started,
            "finished": finished,
            "dropped": dropped,
            "summary": recorder.summary(),
            "recent": [sp.state() for sp in recorder.spans()[-RECENT_SPANS:]],
            "slow": [sp.state() for sp in recorder.slow()],
        }
    return out


def to_json(
    registry: MetricsRegistry,
    recorder: Optional[SpanRecorder] = None,
    *,
    meta: Optional[dict] = None,
    indent: Optional[int] = 2,
) -> str:
    """The snapshot as a JSON document."""
    return json.dumps(
        snapshot_dict(registry, recorder, meta=meta), indent=indent, sort_keys=True
    )


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    pairs = dict(labels)
    if extra:
        pairs.update(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(pairs.items())
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(source: Union[dict, MetricsRegistry]) -> str:
    """Render a snapshot (or a live registry) in Prometheus text format."""
    if isinstance(source, MetricsRegistry):
        metrics = source.snapshot()
    else:
        metrics = source["metrics"]
    lines: List[str] = []
    typed: set = set()

    def header(entry: dict, kind: str) -> None:
        name = entry["name"]
        if name not in typed:
            typed.add(name)
            if entry.get("help"):
                lines.append(f"# HELP {name} {_escape_label(entry['help'])}")
            lines.append(f"# TYPE {name} {kind}")

    for entry in metrics.get("counters", ()):
        header(entry, "counter")
        lines.append(
            f"{entry['name']}{_labels_text(entry['labels'])} {_fmt(entry['value'])}"
        )
    for entry in metrics.get("gauges", ()):
        header(entry, "gauge")
        lines.append(
            f"{entry['name']}{_labels_text(entry['labels'])} {_fmt(entry['value'])}"
        )
    for entry in metrics.get("histograms", ()):
        name = entry["name"]
        header(entry, "histogram")
        labels = entry["labels"]
        cumulative = 0
        for bound, count in zip(entry["buckets"], entry["counts"]):
            cumulative += count
            lines.append(
                f"{name}_bucket"
                f"{_labels_text(labels, {'le': _fmt(bound)})} {cumulative}"
            )
        lines.append(
            f"{name}_bucket{_labels_text(labels, {'le': '+Inf'})} {entry['count']}"
        )
        lines.append(f"{name}_sum{_labels_text(labels)} {repr(float(entry['sum']))}")
        lines.append(f"{name}_count{_labels_text(labels)} {entry['count']}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# human-readable table (``repro stats``)
# --------------------------------------------------------------------- #


def _series_label(entry: dict) -> str:
    labels = entry["labels"]
    if not labels:
        return entry["name"]
    body = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{entry['name']}{{{body}}}"


def _hist_quantile(entry: dict, q: float) -> Optional[float]:
    """Bucket-interpolated quantile straight from snapshot data."""
    total = entry["count"]
    if not total:
        return None
    rank = q * total
    seen = 0.0
    lower = 0.0
    bounds = entry["buckets"]
    for pos, count in enumerate(entry["counts"]):
        upper = bounds[pos] if pos < len(bounds) else bounds[-1]
        if seen + count >= rank:
            if count == 0:
                return upper
            return lower + (rank - seen) / count * (upper - lower)
        seen += count
        lower = upper
    return bounds[-1]


def render_table(snapshot: dict) -> str:
    """Fixed-width table of every series, plus a span section."""
    metrics = snapshot["metrics"]
    rows: List[tuple] = []
    for entry in metrics.get("counters", ()):
        rows.append((_series_label(entry), "counter", _fmt(entry["value"])))
    for entry in metrics.get("gauges", ()):
        rows.append((_series_label(entry), "gauge", _fmt(entry["value"])))
    for entry in metrics.get("histograms", ()):
        count = entry["count"]
        mean = entry["sum"] / count if count else 0.0
        p50 = _hist_quantile(entry, 0.50)
        p99 = _hist_quantile(entry, 0.99)
        detail = (
            f"count={count} mean={mean:.6g}"
            + (f" p50~{p50:.6g} p99~{p99:.6g}" if count else "")
        )
        rows.append((_series_label(entry), "histogram", detail))

    width = max((len(r[0]) for r in rows), default=20)
    lines = [f"{'series'.ljust(width)}  kind       value"]
    lines.append("-" * (width + 30))
    for label, kind, value in rows:
        lines.append(f"{label.ljust(width)}  {kind:<9}  {value}")

    spans = snapshot.get("spans")
    if spans:
        lines.append("")
        lines.append(
            f"spans: finished={spans['finished']} "
            f"retained<={spans['capacity']} dropped={spans['dropped']} "
            f"slow={len(spans['slow'])}"
        )
        summary = spans.get("summary", {})
        if summary:
            name_w = max(len(n) for n in summary)
            lines.append(
                f"{'span'.ljust(name_w)}  count  total_ms   max_ms"
            )
            for name in sorted(summary):
                agg = summary[name]
                lines.append(
                    f"{name.ljust(name_w)}  {agg['count']:>5}  "
                    f"{agg['total_s'] * 1000:>8.2f}  {agg['max_s'] * 1000:>7.2f}"
                )
        for sp in spans.get("slow", [])[-10:]:
            lines.append(
                f"SLOW {sp['name']} {sp['duration'] * 1000:.2f}ms "
                f"attrs={sp['attrs']}"
            )
    return "\n".join(lines)
