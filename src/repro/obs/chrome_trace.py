"""Chrome-trace (``chrome://tracing`` / Perfetto) exporter for spans.

Converts span ``state()`` dicts — parent-side and worker-adopted alike —
into the Trace Event JSON object format that ``chrome://tracing``,
``edge://tracing`` and https://ui.perfetto.dev load directly: one ``X``
(complete) event per span with microsecond timestamps, laid out in one
lane per ``(pid, thread)`` so the cross-process structure of a batch is
visible at a glance (the parent's flusher lane next to each worker's
lane).

Span ``started`` values come from ``time.perf_counter()``, which on
Linux is the system-wide ``CLOCK_MONOTONIC`` — timestamps from the
parent and its (forked or spawned) pool workers share one clock, so
events line up without adjustment.  Timestamps are normalized to the
earliest span so traces start near zero.

Use :func:`to_chrome_trace` for a whole recorder dump or a single trace
(``trace_id=...``); ``python -m repro.cli trace --chrome out.json``
wires it to the shell.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Optional, Tuple

from repro.obs.tracecontext import format_trace_id

__all__ = ["to_chrome_trace", "chrome_trace_json"]


def to_chrome_trace(
    span_states: Iterable[dict],
    *,
    trace_id: Optional[int] = None,
    meta: Optional[dict] = None,
) -> dict:
    """Build a Trace Event Format object from span state dicts.

    With *trace_id*, only spans belonging to that trace are exported.
    Returns the JSON-able object (``{"traceEvents": [...], ...}``);
    :func:`chrome_trace_json` serializes it.
    """
    spans = [dict(s) for s in span_states]
    if trace_id is not None:
        tid_int = int(trace_id)
        spans = [s for s in spans if tid_int in s.get("trace_ids", ())]
    spans.sort(key=lambda s: (s.get("started", 0.0), s.get("span_id", 0)))
    t0 = min((s.get("started", 0.0) for s in spans), default=0.0)

    events = []
    lanes: Dict[Tuple[int, str], int] = {}
    for state in spans:
        pid = int(state.get("pid") or 0)
        thread = str(state.get("thread") or "?")
        lane_key = (pid, thread)
        if lane_key not in lanes:
            # Stable small integer per (pid, thread); named via a
            # metadata event so the viewer shows the thread name.
            lanes[lane_key] = len(lanes) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": lanes[lane_key],
                    "args": {"name": thread},
                }
            )
        args = dict(state.get("attrs", {}))
        args["span_id"] = state.get("span_id")
        if state.get("parent_id") is not None:
            args["parent_id"] = state.get("parent_id")
        traces = state.get("trace_ids", ())
        if traces:
            args["traces"] = [format_trace_id(t) for t in traces]
        events.append(
            {
                "name": state.get("name", "?"),
                "cat": str(state.get("name", "?")).split(".", 1)[0],
                "ph": "X",
                "ts": (state.get("started", 0.0) - t0) * 1e6,
                "dur": max(state.get("duration", 0.0), 0.0) * 1e6,
                "pid": pid,
                "tid": lanes[lane_key],
                "args": args,
            }
        )
    out = {"traceEvents": events, "displayTimeUnit": "ms"}
    other = dict(meta or {})
    if trace_id is not None:
        other["trace_id"] = format_trace_id(trace_id)
    if other:
        out["otherData"] = other
    return out


def chrome_trace_json(
    span_states: Iterable[dict],
    *,
    trace_id: Optional[int] = None,
    meta: Optional[dict] = None,
    indent: Optional[int] = None,
) -> str:
    """JSON text of :func:`to_chrome_trace` (what the CLI writes)."""
    return json.dumps(
        to_chrome_trace(span_states, trace_id=trace_id, meta=meta),
        indent=indent,
    )
