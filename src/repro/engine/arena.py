"""Zero-copy shared-memory packing of built HINT indexes.

A :class:`SharedIndexArena` flattens every array of a
:class:`~repro.hint.index.HintIndex` — or of every per-shard index of a
:class:`~repro.shard.ShardedHint` — into **one**
:mod:`multiprocessing.shared_memory` segment, described by a small
plain-data *manifest*.  Worker processes receive only the manifest
(a few KB of names and offsets), attach the segment once, and rebuild
numpy views over it: the index is shared with **zero copies** — no
pickling of megabyte-scale arrays per batch, no per-worker duplication
of the index, and attach cost is one ``mmap`` plus view construction.

The manifest enumerates each table's arrays through the same layout
metadata the ``.npz`` persistence format uses
(:data:`repro.hint.persist.CLASS_KEYS` /
:data:`~repro.hint.persist.TABLE_COLUMNS`), so the two serializations
cannot drift.  ``xor_prefix`` — normally built lazily on the first
checksum probe — is eagerly materialized via
:meth:`~repro.hint.index.HintIndex.precompute_aux` and packed, so no
worker ever pays (or races) the lazy build.

Lifecycle: the creating process owns the segment.  :meth:`addref` /
:meth:`release` refcount it; the last release **unlinks** the segment
(removing its ``/dev/shm`` entry — attached workers keep their mapping
until they exit, per POSIX semantics, so in-flight batches are safe).
A ``weakref.finalize`` backstop unlinks on garbage collection, and the
interpreter's resource tracker covers hard crashes of the owner.
"""

from __future__ import annotations

import os
import secrets
import threading
import weakref
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

import repro.obs as obs
from repro.hint.index import HintIndex
from repro.hint.persist import CLASS_KEYS
from repro.hint.tables import LevelData, SubdivisionTable

__all__ = [
    "SharedIndexArena",
    "attach_index",
    "list_arena_segments",
    "SEGMENT_PREFIX",
]

MANIFEST_VERSION = 1

#: Prefix of every arena's shared-memory segment name — leak checks
#: (tests, ``make engine-smoke``) glob ``/dev/shm`` for it.
SEGMENT_PREFIX = "repro-arena"

_SHM_DIR = "/dev/shm"

_EMPTY = np.empty(0, dtype=np.int64)

Span = List[int]  # [element_offset, element_count] into the segment


def list_arena_segments() -> List[str]:
    """Names of live arena segments on this machine (POSIX only).

    Empty where ``/dev/shm`` does not exist (non-Linux); tests use the
    before/after delta of this listing as the leak oracle.
    """
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without resource-tracker registration.

    Before Python 3.13 (``track=False``), merely *attaching* a segment
    registers it with the resource tracker, which unlinks everything
    still registered when it shuts down — a worker exiting would
    destroy a segment the owner is still serving from, and the owner's
    eventual explicit unlink would double-unregister (a stderr
    traceback in the tracker daemon).  Suppressing the registration for
    the duration of the attach keeps the tracker's cache balanced: only
    the creating owner is registered, exactly once, as crash insurance.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class _Packer:
    """Accumulates int64 arrays and assigns segment spans."""

    def __init__(self) -> None:
        self.arrays: List[np.ndarray] = []
        self.total = 0

    def add(self, arr: Optional[np.ndarray]) -> Optional[Span]:
        if arr is None:
            return None
        arr = np.ascontiguousarray(arr, dtype=np.int64)
        span = [self.total, int(arr.size)]
        self.arrays.append(arr)
        self.total += int(arr.size)
        return span


def _pack_table(table: SubdivisionTable, packer: _Packer) -> dict:
    table.precompute_aux()  # eager xor_prefix — no lazy build in workers
    return {
        "key_bits": int(table.key_bits),
        "offsets": packer.add(table.offsets),
        "ids": packer.add(table.ids),
        "st": packer.add(table.st),
        "end": packer.add(table.end),
        "comp": packer.add(table.comp),
        "xor_prefix": packer.add(table.xor_prefix),
    }


def _pack_hint(index: HintIndex, packer: _Packer) -> dict:
    levels = []
    for data in index.levels:
        levels.append(
            {
                cls_key: _pack_table(table, packer)
                for cls_key, table in zip(CLASS_KEYS, data.tables())
            }
        )
    return {
        "m": int(index.m),
        "num_intervals": int(index.num_intervals),
        "storage_optimized": bool(index.storage_optimized),
        "levels": levels,
    }


def _pack_sharded(sharded, packer: _Packer) -> dict:
    shards = []
    for shard in sharded.shards:
        shards.append(
            {
                "lo": int(shard.lo),
                "hi": int(shard.hi),
                "index": _pack_hint(shard.index, packer),
                "rep_end": packer.add(shard.rep_end),
                "rep_ids": packer.add(shard.rep_ids),
                "rep_xor_suffix": packer.add(shard.rep_xor_suffix),
                "orig_st": packer.add(shard.orig_st),
                "orig_ids": packer.add(shard.orig_ids),
                "orig_xor_prefix": packer.add(shard.orig_xor_prefix),
            }
        )
    return {
        "m": int(sharded.m),
        "k": int(sharded.k),
        "num_intervals": int(sharded.num_intervals),
        "storage_optimized": bool(sharded.storage_optimized),
        "cuts": [int(c) for c in sharded.cuts],
        "shards": shards,
    }


class SharedIndexArena:
    """One shared-memory segment holding a packed index.

    Parameters
    ----------
    index:
        A built :class:`~repro.hint.index.HintIndex` or
        :class:`~repro.shard.ShardedHint`; every array is copied into
        the segment **once**, here, at pack time — after that, sharing
        is free.

    Attributes
    ----------
    manifest:
        Plain-data (picklable) description of the segment layout; this
        is the *only* thing shipped to workers.
    nbytes:
        Segment payload size in bytes.
    """

    def __init__(self, index) -> None:
        # Import here: repro.shard already imports obs/strategies; the
        # arena must not force the shard layer on HintIndex-only users.
        from repro.shard.sharded import ShardedHint

        packer = _Packer()
        if isinstance(index, ShardedHint):
            body = _pack_sharded(index, packer)
            kind = "sharded"
        elif isinstance(index, HintIndex):
            body = _pack_hint(index, packer)
            kind = "hint"
        else:
            raise TypeError(
                "SharedIndexArena packs HintIndex or ShardedHint, got "
                f"{type(index).__name__}"
            )

        nbytes = max(packer.total * 8, 8)
        shm = None
        for _ in range(16):
            name = f"{SEGMENT_PREFIX}-{os.getpid():d}-{secrets.token_hex(4)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=nbytes
                )
                break
            except FileExistsError:  # pragma: no cover - 2**32 collision
                continue
        if shm is None:  # pragma: no cover
            raise RuntimeError("could not allocate a unique arena segment")

        big = np.ndarray((packer.total,), dtype=np.int64, buffer=shm.buf)
        pos = 0
        for arr in packer.arrays:
            big[pos : pos + arr.size] = arr
            pos += arr.size
        del big  # release the buffer export so close() cannot raise

        self._shm = shm
        self.nbytes = packer.total * 8
        self.total_elems = packer.total
        self.manifest = {
            "version": MANIFEST_VERSION,
            "kind": kind,
            "segment": shm.name,
            "total_elems": packer.total,
            kind: body,
        }
        self._lock = threading.Lock()
        self._refs = 1
        self._unlinked = False
        # GC backstop: an arena dropped without release() must not leak
        # its /dev/shm entry for the life of the process.
        self._finalizer = weakref.finalize(
            self, SharedIndexArena._unlink_segment, shm
        )
        ob = obs.active()
        if ob is not None:
            ob.record_engine_arena(self.nbytes, 1)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @staticmethod
    def _unlink_segment(shm: shared_memory.SharedMemory) -> None:
        try:
            shm.close()
        except Exception:  # pragma: no cover - already closed
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    @property
    def name(self) -> str:
        """Shared-memory segment name (the ``/dev/shm`` entry)."""
        return self.manifest["segment"]

    @property
    def refcount(self) -> int:
        with self._lock:
            return self._refs

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._unlinked

    def addref(self) -> "SharedIndexArena":
        """Register another owner; each must eventually :meth:`release`."""
        with self._lock:
            if self._unlinked:
                raise RuntimeError("arena is already unlinked")
            self._refs += 1
        return self

    def release(self) -> bool:
        """Drop one reference; unlink the segment when none remain.

        Returns ``True`` when this call performed the unlink.  Extra
        releases after the last one are no-ops — swap/close paths may
        race without double-unlink errors.
        """
        with self._lock:
            if self._unlinked:
                return False
            self._refs -= 1
            if self._refs > 0:
                return False
            self._unlinked = True
        self._finalizer.detach()
        self._unlink_segment(self._shm)
        ob = obs.active()
        if ob is not None:
            ob.record_engine_arena(-self.nbytes, -1)
        return True

    def close(self) -> None:
        """Alias of :meth:`release` for ``with``-style single owners."""
        self.release()

    def __enter__(self) -> "SharedIndexArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "unlinked" if self.closed else f"refs={self.refcount}"
        return (
            f"SharedIndexArena(kind={self.manifest['kind']!r}, "
            f"segment={self.name!r}, {self.nbytes / 1e6:.1f} MB, {state})"
        )


# --------------------------------------------------------------------- #
# attaching (worker side, and differential tests)
# --------------------------------------------------------------------- #


def _view(big: np.ndarray, span: Optional[Span]) -> Optional[np.ndarray]:
    if span is None:
        return None
    off, size = span
    return big[off : off + size]


def _attach_table(entry: dict, big: np.ndarray) -> SubdivisionTable:
    return SubdivisionTable(
        offsets=_view(big, entry["offsets"]),
        ids=_view(big, entry["ids"]),
        st=_view(big, entry["st"]),
        end=_view(big, entry["end"]),
        comp=_view(big, entry["comp"]),
        key_bits=int(entry["key_bits"]),
        _xor_prefix=_view(big, entry["xor_prefix"]),
    )


def _attach_hint(body: dict, big: np.ndarray) -> HintIndex:
    index = HintIndex.__new__(HintIndex)
    index.m = int(body["m"])
    index.num_intervals = int(body["num_intervals"])
    index.storage_optimized = bool(body["storage_optimized"])
    index.debug_checks = False
    index._domain_top = (1 << index.m) - 1
    index.levels = [
        LevelData(
            level,
            *(_attach_table(entry[cls_key], big) for cls_key in CLASS_KEYS),
        )
        for level, entry in enumerate(body["levels"])
    ]
    return index


def _attach_sharded(body: dict, big: np.ndarray, only: Optional[set]):
    from repro.shard.sharded import ShardedHint, _Shard

    shards = []
    for j, entry in enumerate(body["shards"]):
        if only is not None and j not in only:
            shards.append(None)
            continue
        shards.append(
            _Shard.from_arrays(
                entry["lo"],
                entry["hi"],
                _attach_hint(entry["index"], big),
                _view(big, entry["rep_end"]),
                _view(big, entry["rep_ids"]),
                _view(big, entry["rep_xor_suffix"]),
                _view(big, entry["orig_st"]),
                _view(big, entry["orig_ids"]),
                _view(big, entry["orig_xor_prefix"]),
            )
        )
    if only is not None:
        return shards  # pinned worker: a sparse list, not a ShardedHint
    sharded = ShardedHint.from_shards(
        [s for s in shards],
        m=int(body["m"]),
        cuts=np.asarray(body["cuts"], dtype=np.int64),
        num_intervals=int(body["num_intervals"]),
        storage_optimized=bool(body["storage_optimized"]),
        workers=1,
    )
    return sharded


def attach_index(
    manifest: dict, *, shards: Optional[List[int]] = None
) -> Tuple[object, shared_memory.SharedMemory]:
    """Rebuild an index as numpy views over an arena segment.

    Returns ``(index, shm)``; the caller must keep *shm* alive as long
    as the index is in use (the views borrow its mapping) and should
    simply drop both on exit — the **owner** unlinks, attachers never
    do (their resource-tracker registration is removed here, see
    :func:`_unregister`).

    ``shards`` restricts a ``"sharded"`` manifest to a subset of shard
    numbers (worker pinning); the result is then a list indexed by
    shard number with ``None`` holes, each entry a
    ``_Shard``.  With ``shards=None`` a full
    :class:`~repro.shard.ShardedHint` (or
    :class:`~repro.hint.index.HintIndex`) is returned.
    """
    if manifest.get("version") != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported arena manifest version {manifest.get('version')!r} "
            f"(expected {MANIFEST_VERSION})"
        )
    shm = _attach_untracked(manifest["segment"])
    big = np.ndarray((manifest["total_elems"],), dtype=np.int64, buffer=shm.buf)
    big.flags.writeable = False  # indexes are immutable; so is the arena
    if manifest["kind"] == "hint":
        obj: object = _attach_hint(manifest["hint"], big)
    elif manifest["kind"] == "sharded":
        obj = _attach_sharded(
            manifest["sharded"], big, set(shards) if shards is not None else None
        )
    else:
        raise ValueError(f"unknown arena kind {manifest['kind']!r}")
    return obj, shm
