"""Shared-memory process-parallel execution engine.

The paper closes with multi-core batch processing as future work; this
package is the process half of that investigation (threads live in
:mod:`repro.core.parallel`).  A built index is packed once into a
shared-memory :class:`SharedIndexArena`, a persistent worker pool
attaches it zero-copy, and :class:`ExecutionEngine` routes each batch to
the cheapest backend — serial, threads, or processes — behind the same
``execute()`` contract the batching service already consumes.

See ``docs/parallelism.md`` for the thread-vs-process decision matrix,
arena memory accounting, and start-method caveats.
"""

from repro.engine.arena import (
    SEGMENT_PREFIX,
    SharedIndexArena,
    attach_index,
    list_arena_segments,
)
from repro.engine.engine import BACKENDS, ExecutionEngine

__all__ = [
    "BACKENDS",
    "ExecutionEngine",
    "SEGMENT_PREFIX",
    "SharedIndexArena",
    "attach_index",
    "list_arena_segments",
]
