"""Unified batch-execution engine: serial, threads, or processes.

:class:`ExecutionEngine` wraps a built index behind the same
``run_strategy``-shaped ``execute()`` contract that
:class:`~repro.shard.ShardedHint` exposes, and picks **per batch** how
to run it:

``serial``
    The sequential strategy call — lowest constant cost, and on a
    single-core machine the fastest option for everything.
``threads``
    The existing chunked thread path
    (:func:`~repro.core.parallel.parallel_batch`, or the sharded
    index's own pool) — real parallelism only where the numpy hot loops
    release the GIL.
``processes``
    A persistent process pool sharing the index through a
    :class:`~repro.engine.arena.SharedIndexArena` — workers attach the
    shared-memory segment once at warm-up, per-batch dispatch ships
    only the chunk query arrays plus ``(strategy, mode)``, and results
    return as compact flat arrays.  Sidesteps the GIL for the
    Python-loop strategies and ids-mode materialization.
``compiled``
    The kernel path (:func:`~repro.kernels.compiled.compiled_run`):
    the partition-based sweep runs on the :mod:`repro.kernels` hot-path
    kernels — Numba machine code when available, the identical NumPy
    fallback otherwise — in the calling thread.
``threads+compiled``
    The thread path with the compiled runner in every chunk/shard.
    With numba present the kernels release the GIL, so this covers the
    GIL-bound work the process backend existed for, without arena or
    pickle costs.
``auto``
    The adaptive policy: the static threshold prior (see
    ``auto-static``) until the engine's
    :class:`~repro.planner.policy.OnlineBackendPolicy` has observed
    enough per-backend latencies for the batch's (strategy, mode, size
    bucket), then the observed-fastest backend.  Every executed batch
    — whatever chose its backend — trains the policy.
``auto-static``
    The original threshold policy alone (batch size, strategy, result
    mode, kernel availability, core count; see :meth:`_choose`), never
    adapting.  This is the planner's fallback and the ``auto`` policy's
    cold-start behaviour.

Because the surface matches ``ShardedHint.execute``, a
:class:`~repro.service.BatchingQueryService` installs an engine through
``swap_index`` with zero call-site changes.

Failure containment: every process dispatch passes the
:data:`~repro.verify.faults.SITE_DISPATCH` fault site, and a broken
pool (killed worker, injected fault) **degrades** the engine to
in-process execution for the batch at hand — callers see results, not
hangs.  A degraded engine is on probation, not dead: after
``probation_batches`` clean batches it rebuilds the pool, and only
after ``max_pool_failures`` consecutive pool failures does it give up
permanently; the arena is unlinked on degrade and at :meth:`close`.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from time import perf_counter
from typing import List, Optional

import numpy as np

import repro.obs as obs
from repro.obs.aggregate import merge_telemetry
from repro.core.parallel import _chunks, parallel_batch, resolve_workers
from repro.core.result import MODES, BatchResult
from repro.core.strategies import STRATEGIES, run_strategy
from repro.engine.arena import SharedIndexArena
from repro.engine.worker import (
    decode_result,
    init_worker,
    ping,
    run_hint_chunk,
    run_shard_primary,
)
from repro.hint.index import HintIndex
from repro.intervals.batch import QueryBatch
from repro.kernels.compiled import compiled_run
from repro.planner.policy import (
    GIL_BOUND_STRATEGIES,
    OnlineBackendPolicy,
    static_backend_choice,
)
from repro.shard.sharded import ShardedHint
from repro.verify.faults import SITE_DISPATCH, FaultPlan, InjectedFault

__all__ = ["ExecutionEngine", "BACKENDS"]

_EMPTY = np.empty(0, dtype=np.int64)

#: Backend names accepted by :class:`ExecutionEngine`.
BACKENDS = (
    "auto",
    "auto-static",
    "serial",
    "threads",
    "processes",
    "compiled",
    "threads+compiled",
)

#: Kept as an alias — the canonical set lives with the static policy in
#: :mod:`repro.planner.policy` so the engine and the planner cannot
#: drift.
_GIL_BOUND_STRATEGIES = GIL_BOUND_STRATEGIES


class _InlineMap:
    """Executor-shaped shim whose ``map`` runs inline on the caller.

    Passed to ``ShardedHint.execute`` to force genuinely serial
    execution without touching the index's own pool configuration.
    """

    def map(self, fn, iterable):
        return [fn(item) for item in iterable]


class ExecutionEngine:
    """Backend-selecting executor over a built index.

    Parameters
    ----------
    index:
        A :class:`~repro.hint.index.HintIndex` or
        :class:`~repro.shard.ShardedHint`.  The engine borrows it (for
        the serial/thread paths and the sharded routing/merge) — it is
        not closed by :meth:`close`.
    backend:
        One of :data:`BACKENDS`; ``"auto"`` (default) picks per call.
        The per-call ``backend=`` argument of :meth:`execute` overrides
        this for one batch (benchmarks measure all backends through one
        engine and one arena this way).
    workers:
        Worker count for the thread and process paths; ``None`` resolves
        to ``os.cpu_count()`` via
        :func:`~repro.core.parallel.resolve_workers`.
    mp_context:
        Multiprocessing start method (``"fork"``/``"spawn"``/
        ``"forkserver"`` or a context object).  Defaults to ``"fork"``
        where available — microsecond worker start and no re-import; see
        ``docs/parallelism.md`` for the spawn caveats.
    shard_affinity:
        For a sharded index, pin whole shards to dedicated single-worker
        pools (shard ``j`` always runs on pool ``j % npools``), so each
        worker only ever touches its shards' pages.  With ``False`` one
        shared pool runs any shard anywhere.
    fault_plan:
        Optional :class:`~repro.verify.faults.FaultPlan`; the
        :data:`~repro.verify.faults.SITE_DISPATCH` site fires right
        before every process-pool dispatch.
    serial_cutoff, process_cutoff, thread_cutoff:
        ``auto``-policy thresholds (batch sizes); see :meth:`_choose`.
    probation_batches:
        After a pool failure, the number of clean batches the engine
        must serve in-process before it attempts a pool rebuild.
    max_pool_failures:
        Consecutive pool failures (without an intervening healthy
        process batch) after which the engine stops rebuilding and
        stays in-process permanently.

    The process infrastructure (arena + pools) starts eagerly when the
    configured backend is ``"processes"``, or on first demand otherwise;
    ``"auto"`` on a single-core machine never starts it.
    """

    def __init__(
        self,
        index,
        *,
        backend: str = "auto",
        workers: Optional[int] = None,
        mp_context=None,
        shard_affinity: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        serial_cutoff: int = 128,
        process_cutoff: int = 512,
        thread_cutoff: int = 2048,
        probation_batches: int = 32,
        max_pool_failures: int = 3,
        backend_policy: Optional[OnlineBackendPolicy] = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if not isinstance(index, (HintIndex, ShardedHint)):
            raise TypeError(
                "ExecutionEngine wraps HintIndex or ShardedHint, got "
                f"{type(index).__name__}"
            )
        self._index = index
        self._is_sharded = isinstance(index, ShardedHint)
        self.backend = backend
        self.workers = resolve_workers(workers)
        self.shard_affinity = bool(shard_affinity)
        self.serial_cutoff = int(serial_cutoff)
        self.process_cutoff = int(process_cutoff)
        self.thread_cutoff = int(thread_cutoff)
        self.probation_batches = int(probation_batches)
        self.max_pool_failures = int(max_pool_failures)
        #: The ``auto`` policy's observed-latency ledger; every executed
        #: batch trains it (see :class:`OnlineBackendPolicy`).
        self.backend_policy = (
            backend_policy if backend_policy is not None else OnlineBackendPolicy()
        )
        self._fault_plan = fault_plan
        self._cpus = os.cpu_count() or 1
        if mp_context is None or isinstance(mp_context, str):
            methods = multiprocessing.get_all_start_methods()
            method = mp_context or ("fork" if "fork" in methods else "spawn")
            self._mp_context = multiprocessing.get_context(method)
        else:
            self._mp_context = mp_context

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._inflight = 0
        self._closed = False
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._arena: Optional[SharedIndexArena] = None
        self._pools: List[ProcessPoolExecutor] = []
        self._procs_started = False
        self._procs_broken = False
        self._pool_failures = 0  # consecutive, reset by a healthy batch
        self._clean_batches = 0  # in-process batches since last failure
        if backend == "processes":
            self._ensure_processes()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def index(self):
        """The wrapped index (borrowed, never closed by the engine)."""
        return self._index

    @property
    def arena(self) -> Optional[SharedIndexArena]:
        """The shared-memory arena, once the process backend started."""
        return self._arena

    @property
    def processes_available(self) -> bool:
        """True while the process backend is started and healthy."""
        with self._lock:
            return self._procs_started and not self._procs_broken

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __repr__(self) -> str:
        kind = "sharded" if self._is_sharded else "hint"
        return (
            f"ExecutionEngine(backend={self.backend!r}, kind={kind!r}, "
            f"workers={self.workers}, processes="
            f"{'up' if self.processes_available else 'down'})"
        )

    # ------------------------------------------------------------------ #
    # backend selection
    # ------------------------------------------------------------------ #

    def _choose(self, n: int, strategy: str, mode: str, override) -> str:
        """Resolve the backend for one batch.

        Fixed backends resolve to themselves (``processes`` degrades to
        ``threads`` while the pool is broken or on probation).
        ``auto-static`` is the original threshold policy
        (:func:`~repro.planner.policy.static_backend_choice` — note it
        only prefers ``threads+compiled`` when the JIT kernels are live
        *and not* on the GIL-holding NumPy fallback); ``auto`` starts
        from the same prior and deviates once the engine's
        :class:`~repro.planner.policy.OnlineBackendPolicy` has observed
        a measurably faster backend for the batch's (strategy, mode,
        size bucket).
        """
        backend = override if override is not None else self.backend
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if backend == "processes":
            self._ensure_processes()
            return "processes" if self.processes_available else "threads"
        if backend not in ("auto", "auto-static"):
            return backend
        static = self._static_choice(n, strategy, mode)
        if backend == "auto-static":
            return static
        try:
            learned = self.backend_policy.choose(n, strategy, mode, static)
        except Exception:
            learned = None  # a broken policy must never fail the batch
        if learned is None or learned == static:
            return static
        if learned not in BACKENDS or learned in ("auto", "auto-static"):
            return static
        if learned == "processes":
            self._ensure_processes()
            if not self.processes_available:
                return static
        return learned

    def _static_choice(self, n: int, strategy: str, mode: str) -> str:
        """The threshold prior (the ``auto-static`` backend)."""
        return static_backend_choice(
            n,
            strategy,
            mode,
            cpus=self._cpus,
            serial_cutoff=self.serial_cutoff,
            process_cutoff=self.process_cutoff,
            thread_cutoff=self.thread_cutoff,
            processes_up=self._processes_up,
        )

    def _processes_up(self) -> bool:
        self._ensure_processes()
        return self.processes_available

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def execute(
        self,
        batch: QueryBatch,
        *,
        strategy: str = "partition-based",
        mode: str = "count",
        backend: Optional[str] = None,
        executor=None,
        runners=None,
    ) -> BatchResult:
        """Evaluate *batch*; results in caller order, any backend.

        Mirrors :func:`~repro.core.strategies.run_strategy` /
        :meth:`ShardedHint.execute` — same strategy names, same result
        modes, same ordering contract — so the engine drops into a
        :class:`~repro.service.BatchingQueryService` via ``swap_index``
        unchanged.  ``backend`` overrides the engine's configured
        backend for this one call; ``executor`` is forwarded to the
        thread path (externally managed pools); ``runners`` is the
        sharded per-shard runner chooser (see
        :meth:`ShardedHint.execute`), forwarded on the in-process paths
        and ignored for a plain :class:`HintIndex`.
        """
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; available: {sorted(STRATEGIES)}"
            )
        if mode not in MODES:
            raise ValueError(
                f"unknown result mode {mode!r}; expected one of {MODES}"
            )
        n = len(batch)
        if n == 0:
            return BatchResult.empty(mode)
        with self._lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            self._inflight += 1
        try:
            resolved = self._choose(n, strategy, mode, backend)
            ob = obs.active()
            t0 = perf_counter()
            if ob is None:
                result, ran_on = self._run(
                    batch, strategy, mode, resolved, executor, runners
                )
                self._note_outcome(resolved, ran_on)
                self.backend_policy.observe(
                    ran_on, strategy, mode, n, perf_counter() - t0
                )
                return result
            with ob.span(
                "engine.execute",
                backend=resolved,
                strategy=strategy,
                queries=n,
                mode=mode,
            ) as sp:
                result, ran_on = self._run(
                    batch, strategy, mode, resolved, executor, runners
                )
                if ran_on != resolved:
                    sp.attrs["degraded_to"] = ran_on
            self._note_outcome(resolved, ran_on)
            dt = perf_counter() - t0
            self.backend_policy.observe(ran_on, strategy, mode, n, dt)
            ob.record_engine_batch(ran_on, n, dt)
            return result
        finally:
            with self._cond:
                self._inflight -= 1
                self._cond.notify_all()

    def _note_outcome(self, resolved: str, ran_on: str) -> None:
        """Probation bookkeeping after one successful batch.

        A healthy process batch ends the current failure streak; any
        other successful batch (other than the one that just degraded)
        counts toward the clean-batch quota that re-arms the pool
        rebuild in :meth:`_ensure_processes`.
        """
        degraded_now = resolved == "processes" and ran_on != "processes"
        with self._lock:
            if ran_on == "processes":
                self._pool_failures = 0
            elif self._pool_failures and not self._procs_broken and not degraded_now:
                self._clean_batches += 1

    def _run(self, batch, strategy, mode, resolved, executor, runners=None):
        """Dispatch to *resolved*; returns ``(result, backend_that_ran)``."""
        if resolved == "processes":
            try:
                if self._fault_plan is not None:
                    self._fault_plan.fire(SITE_DISPATCH)
                return self._dispatch_processes(batch, strategy, mode), "processes"
            except (BrokenExecutor, InjectedFault, OSError) as exc:
                # A killed worker (BrokenProcessPool), an injected
                # dispatch fault, or a torn-down segment: degrade to
                # in-process execution rather than failing the batch.
                # The pool goes on probation (see _degrade) — it is
                # rebuilt after enough clean batches, abandoned for
                # good after max_pool_failures consecutive failures.
                self._degrade(exc)
        if resolved == "compiled":
            return self._execute_compiled(batch, strategy, mode, runners), "compiled"
        if resolved == "threads+compiled":
            return (
                self._execute_threads(
                    batch, strategy, mode, executor, runner=compiled_run,
                    runners=runners,
                ),
                "threads+compiled",
            )
        if resolved == "threads" or resolved == "processes":
            return (
                self._execute_threads(
                    batch, strategy, mode, executor, runners=runners
                ),
                "threads",
            )
        return self._execute_serial(batch, strategy, mode, runners), "serial"

    def _execute_serial(self, batch, strategy, mode, runners=None) -> BatchResult:
        if self._is_sharded:
            return self._index.execute(
                batch, strategy=strategy, mode=mode, executor=_InlineMap(),
                runners=runners,
            )
        return run_strategy(strategy, self._index, batch, mode=mode)

    def _execute_compiled(self, batch, strategy, mode, runners=None) -> BatchResult:
        """The kernel path, serially in the calling thread."""
        if self._is_sharded:
            return self._index.execute(
                batch,
                strategy=strategy,
                mode=mode,
                executor=_InlineMap(),
                runner=compiled_run,
                runners=runners,
            )
        return compiled_run(strategy, self._index, batch, mode=mode)

    def _execute_threads(
        self, batch, strategy, mode, executor=None, runner=None, runners=None
    ) -> BatchResult:
        if self._is_sharded:
            return self._index.execute(
                batch,
                strategy=strategy,
                mode=mode,
                executor=executor,
                runner=runner,
                runners=runners,
            )
        return parallel_batch(
            self._index,
            batch,
            strategy=strategy,
            workers=self.workers,
            mode=mode,
            executor=executor if executor is not None else self._threads(),
            runner=runner,
        )

    # ------------------------------------------------------------------ #
    # process backend
    # ------------------------------------------------------------------ #

    def _dispatch_processes(self, batch, strategy, mode) -> BatchResult:
        if self._is_sharded:
            return self._dispatch_sharded(batch, strategy, mode)
        return self._dispatch_hint(batch, strategy, mode)

    def _telemetry_request(self, ob) -> Optional[dict]:
        """The per-task telemetry request shipped to pool workers: the
        dispatching thread's sampled trace ids (set by the service
        flusher's trace scope) plus the parent plane's recorder
        thresholds, so worker-side sampling matches the parent's."""
        if ob is None:
            return None
        cfg = ob.config
        return {
            "traces": ob.recorder.current_trace_ids(),
            "trace_partitions": cfg.trace_partitions,
            "slow_threshold_s": cfg.slow_threshold_s,
            "slow_overrides": cfg.slow_overrides,
        }

    def _collect(self, future, ob, telemetry):
        """Unwrap one worker future; fold shipped telemetry into *ob*.

        Adopted worker spans graft under the dispatching thread's open
        ``engine.execute`` span, which is what makes one cross-process
        trace tree out of the batch.
        """
        payload = future.result()
        if telemetry is None:
            return payload
        payload, tele = payload
        merge_telemetry(
            ob,
            tele.get("delta"),
            worker_label=str(tele.get("worker", "?")),
            parent_span_id=ob.recorder.current_span_id(),
        )
        return payload

    def _dispatch_hint(self, batch, strategy, mode) -> BatchResult:
        """Chunk the sorted batch across the pool; stitch to caller order."""
        work = batch.sorted_by_start()
        n = len(work)
        pool = self._pools[0]
        ob = obs.active()
        telemetry = self._telemetry_request(ob)
        futures = [
            pool.submit(
                run_hint_chunk, work.st[sl], work.end[sl], strategy, mode,
                telemetry,
            )
            for sl in _chunks(n, self.workers)
        ]
        partials = [
            decode_result(self._collect(f, ob, telemetry), mode)
            for f in futures
        ]
        return _stitch(partials, work, n, mode)

    def _dispatch_sharded(self, batch, strategy, mode) -> BatchResult:
        """Route parent-side, run primaries on shard-pinned workers.

        Only the HINT traversals cross the process boundary: routing,
        the replica/spill probes (single vectorized ``searchsorted``
        calls — cheaper than a round-trip) and the exact merge all stay
        in the parent, reusing the sharded index's own helpers.
        """
        index = self._index
        ob = obs.active()
        telemetry = self._telemetry_request(ob)
        work, q_st, q_end, jobs = index._route(batch)
        staged = []
        for j, j0, j1, spill in jobs:
            future = None
            if j1 > j0:
                sub = index._primary_local_batch(j, j0, j1, q_st, q_end)
                future = self._pool_for_shard(j).submit(
                    run_shard_primary, j, sub.st, sub.end, strategy, mode,
                    telemetry,
                )
            staged.append((j, j0, j1, spill, future))
        partials = []
        for j, j0, j1, spill, future in staged:
            primary = rep_ks = sp_ks = None
            if future is not None:
                primary = decode_result(
                    self._collect(future, ob, telemetry), mode
                )
                rep_ks = index._probe_replicas(j, j0, j1, q_st)
            if spill.size:
                sp_ks = index._probe_spills(j, spill, q_end)
            partials.append((j, j0, j1, spill, primary, rep_ks, sp_ks))
        return index._merge(partials, work, len(batch), mode)

    def _pool_for_shard(self, j: int) -> ProcessPoolExecutor:
        return self._pools[j % len(self._pools)]

    def _ensure_processes(self) -> None:
        """Start the arena and pools once; warm every worker's attach.

        After a pool failure the engine is on probation: rebuild
        attempts are refused until ``probation_batches`` clean batches
        have been served in-process (and permanently once
        ``max_pool_failures`` consecutive failures accumulated).
        """
        with self._lock:
            if self._procs_started or self._procs_broken or self._closed:
                return
            if self._pool_failures and self._clean_batches < self.probation_batches:
                return  # on probation after a pool failure
            self._procs_started = True
        try:
            arena = SharedIndexArena(self._index)
            # Registered immediately so a mid-build failure releases it
            # via _degrade instead of leaking the shared segments.
            with self._lock:
                self._arena = arena
            pools: List[ProcessPoolExecutor] = []
            warmups = []
            if self._is_sharded and self.shard_affinity:
                npools = min(self.workers, self._index.k)
                for i in range(npools):
                    pinned = list(range(i, self._index.k, npools))
                    pool = ProcessPoolExecutor(
                        max_workers=1,
                        mp_context=self._mp_context,
                        initializer=init_worker,
                        initargs=(arena.manifest, pinned),
                    )
                    pools.append(pool)
                    warmups.append(pool.submit(ping))
            else:
                pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=self._mp_context,
                    initializer=init_worker,
                    initargs=(arena.manifest, None),
                )
                pools.append(pool)
                warmups.extend(pool.submit(ping) for _ in range(self.workers))
            with self._lock:
                self._pools = pools
            for future in warmups:
                future.result()
        except Exception as exc:
            self._degrade(exc)

    def _degrade(self, exc: BaseException) -> None:
        """Tear the process backend down after a failure; keep serving.

        The failure starts (or extends) a probation window: the pool
        and arena are released now, ``_ensure_processes`` refuses to
        rebuild until enough clean batches pass, and after
        ``max_pool_failures`` consecutive failures the backend is
        abandoned for good.
        """
        with self._lock:
            if not self._procs_started and not self._pools:
                return  # a concurrent dispatch already degraded us
            self._procs_started = False
            self._pool_failures += 1
            self._clean_batches = 0
            if self._pool_failures >= self.max_pool_failures:
                self._procs_broken = True
            pools, self._pools = self._pools, []
            arena, self._arena = self._arena, None
        for pool in pools:
            pool.shutdown(wait=False, cancel_futures=True)
        if arena is not None:
            arena.release()
        ob = obs.active()
        if ob is not None:
            ob.record_engine_fallback(type(exc).__name__)

    def _threads(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._thread_pool is None:
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-engine",
                )
            return self._thread_pool

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drain in-flight batches, stop the pools, unlink the arena.

        Blocks until every in-flight :meth:`execute` has finished (the
        refcount the service's ``swap_index(..., close_old=True)`` path
        relies on), then releases every resource the engine created.
        The wrapped index is left untouched.  Idempotent.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            while self._inflight:
                self._cond.wait()
            pools, self._pools = self._pools, []
            thread_pool, self._thread_pool = self._thread_pool, None
            arena, self._arena = self._arena, None
        for pool in pools:
            pool.shutdown(wait=True, cancel_futures=True)
        if thread_pool is not None:
            thread_pool.shutdown(wait=True)
        if arena is not None:
            arena.release()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _stitch(partials, work: QueryBatch, n: int, mode: str) -> BatchResult:
    """Reassemble per-chunk results (sorted order) into caller order.

    Same contract as the tail of
    :func:`~repro.core.parallel.parallel_batch`, operating on already
    decoded per-chunk :class:`BatchResult`\\ s.
    """
    counts_sorted = np.concatenate([p.counts for p in partials])
    counts = np.empty(n, dtype=np.int64)
    counts[work.order] = counts_sorted
    if mode == "count":
        return BatchResult(counts)
    if mode == "checksum":
        sums_sorted = np.concatenate([p.checksums for p in partials])
        sums = np.empty(n, dtype=np.int64)
        sums[work.order] = sums_sorted
        return BatchResult(counts, checksums=sums)
    ids: List[np.ndarray] = [_EMPTY] * n
    pos = 0
    for partial in partials:
        for i in range(len(partial)):
            ids[int(work.order[pos])] = partial.ids(i)
            pos += 1
    return BatchResult(counts, ids)
