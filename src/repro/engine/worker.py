"""Worker-process side of the execution engine.

Each process of an :class:`~repro.engine.ExecutionEngine` pool runs
:func:`init_worker` exactly once (as the pool initializer): it attaches
the shared-memory arena, rebuilds the index as numpy views over it, and
parks both in module globals.  Per-batch tasks then only carry the
chunk's query endpoint arrays plus ``(strategy, mode)`` — a few KB —
and return the compact encodings below instead of
:class:`~repro.core.result.BatchResult` objects (a Python list of
per-query arrays pickles an object per query; three flat arrays pickle
as three buffers).

Everything here must stay importable under the ``spawn`` start method:
module-level code only defines functions and constants, and all state
lives in :data:`_STATE`, populated by the initializer.

**Telemetry.** When the parent's observability plane is on, each task
carries a small *telemetry request* (the sampled trace ids of the batch
plus the parent's span-recorder thresholds).  The worker then runs the
task under a fresh per-task plane of its own — never the parent's
fork-inherited one — and returns ``(payload, telemetry)`` instead of
the bare payload, where the second element is a compact
:func:`repro.obs.aggregate.telemetry_delta` the parent merges back
under a ``worker=<pid>`` label.  Without a request the signatures and
return shapes are exactly as before.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.result import BatchResult
from repro.core.strategies import run_strategy
from repro.engine.arena import attach_index
from repro.intervals.batch import QueryBatch

__all__ = [
    "init_worker",
    "ping",
    "run_hint_chunk",
    "run_shard_primary",
    "encode_result",
    "decode_result",
]

_EMPTY = np.empty(0, dtype=np.int64)

# Populated by init_worker; one arena attach per worker process, reused
# for every task the worker ever runs.
_STATE: Dict[str, object] = {"shm": None, "index": None, "shards": None}


def init_worker(manifest: dict, pinned: Optional[List[int]] = None) -> None:
    """Pool initializer: attach the arena once, keep views for life.

    ``pinned`` restricts a sharded manifest to the shard numbers this
    worker serves (shard-affinity pools); ``None`` attaches everything.
    The segment mapping (``shm``) is parked alongside the views — the
    worker never closes it; the OS reclaims the mapping at process exit
    and only the owning process unlinks.
    """
    obj, shm = attach_index(manifest, shards=pinned)
    _STATE["shm"] = shm
    if manifest["kind"] == "hint":
        _STATE["index"] = obj
        _STATE["shards"] = None
    elif pinned is None:
        _STATE["index"] = obj  # a full ShardedHint
        _STATE["shards"] = obj.shards
    else:
        _STATE["index"] = None
        _STATE["shards"] = obj  # sparse list: _Shard at pinned slots


def ping() -> int:
    """Warm-up no-op; returns the worker pid (spawns + attaches eagerly)."""
    return os.getpid()


# --------------------------------------------------------------------- #
# compact result encoding
# --------------------------------------------------------------------- #


def encode_result(result: BatchResult, mode: str) -> Tuple[np.ndarray, ...]:
    """Flatten a chunk's :class:`BatchResult` into plain arrays.

    ``count`` → ``(counts,)``; ``checksum`` → ``(counts, checksums)``;
    ``ids`` → ``(counts, flat_ids, offsets)`` with query ``i`` of the
    chunk owning ``flat_ids[offsets[i]:offsets[i+1]]``.
    """
    if mode == "count":
        return (result.counts,)
    if mode == "checksum":
        return (result.counts, result.checksums)
    n = len(result)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(result.counts, out=offsets[1:])
    parts = [result.ids(i) for i in range(n)]
    flat = np.concatenate(parts) if parts else _EMPTY
    return (result.counts, flat, offsets)


def decode_result(payload: Tuple[np.ndarray, ...], mode: str) -> BatchResult:
    """Inverse of :func:`encode_result` (ids become zero-copy views)."""
    if mode == "count":
        return BatchResult(payload[0])
    if mode == "checksum":
        return BatchResult(payload[0], checksums=payload[1])
    counts, flat, offsets = payload
    ids = [
        flat[int(offsets[i]) : int(offsets[i + 1])]
        for i in range(counts.size)
    ]
    return BatchResult(counts, ids)


# --------------------------------------------------------------------- #
# worker-side telemetry
# --------------------------------------------------------------------- #


def _run_with_telemetry(telemetry: dict, fn):
    """Run *fn* under a fresh worker-local plane; ship what it recorded.

    A fresh :func:`repro.obs.configure` per task means the baseline is
    empty (the delta is exactly this task's work) and the worker never
    writes into a plane inherited across ``fork`` — the parent's ring
    cannot be polluted, and fork-inherited counts cannot leak into the
    shipped delta.  The plane is torn back down afterwards so tasks
    without a telemetry request stay on the zero-cost path.
    """
    import repro.obs as obs
    from repro.obs import aggregate

    ob = obs.configure(
        enabled=True,
        trace_partitions=bool(telemetry.get("trace_partitions", False)),
        slow_threshold_s=float(telemetry.get("slow_threshold_s", 0.1)),
        slow_overrides=telemetry.get("slow_overrides"),
    )
    traces = tuple(telemetry.get("traces", ()))
    try:
        with ob.recorder.trace_scope(traces):
            payload = fn()
        delta = aggregate.telemetry_delta(
            ob.registry,
            recorder=ob.recorder,
            trace_ids=traces,
            max_spans=int(telemetry.get("max_spans", 64)),
        )
    finally:
        obs.configure(enabled=False)
    return payload, {"worker": os.getpid(), "delta": delta}


# --------------------------------------------------------------------- #
# task entry points (run in the worker process)
# --------------------------------------------------------------------- #


def run_hint_chunk(
    st: np.ndarray,
    end: np.ndarray,
    strategy: str,
    mode: str,
    telemetry: Optional[dict] = None,
):
    """Execute one contiguous chunk of the sorted batch on the index.

    With a *telemetry* request, returns ``(payload, telemetry_dict)``
    instead of the bare payload (see the module docstring).
    """
    def task():
        result = run_strategy(
            strategy, _STATE["index"], QueryBatch(st, end), mode=mode
        )
        return encode_result(result, mode)

    if telemetry is None:
        return task()
    return _run_with_telemetry(telemetry, task)


def run_shard_primary(
    j: int,
    st: np.ndarray,
    end: np.ndarray,
    strategy: str,
    mode: str,
    telemetry: Optional[dict] = None,
):
    """Execute shard *j*'s pre-clipped primary sub-batch.

    The parent already routed the batch and clipped the slice into the
    shard's local domain (:meth:`ShardedHint._primary_local_batch`);
    replica/spill probes stay parent-side — they are single vectorized
    ``searchsorted`` calls, cheaper than a round-trip.  *telemetry* as
    in :func:`run_hint_chunk`.
    """
    def task():
        shard = _STATE["shards"][j]
        result = run_strategy(
            strategy, shard.index, QueryBatch(st, end), mode=mode
        )
        return encode_result(result, mode)

    if telemetry is None:
        return task()
    return _run_with_telemetry(telemetry, task)
