"""Worker-process side of the execution engine.

Each process of an :class:`~repro.engine.ExecutionEngine` pool runs
:func:`init_worker` exactly once (as the pool initializer): it attaches
the shared-memory arena, rebuilds the index as numpy views over it, and
parks both in module globals.  Per-batch tasks then only carry the
chunk's query endpoint arrays plus ``(strategy, mode)`` — a few KB —
and return the compact encodings below instead of
:class:`~repro.core.result.BatchResult` objects (a Python list of
per-query arrays pickles an object per query; three flat arrays pickle
as three buffers).

Everything here must stay importable under the ``spawn`` start method:
module-level code only defines functions and constants, and all state
lives in :data:`_STATE`, populated by the initializer.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.result import BatchResult
from repro.core.strategies import run_strategy
from repro.engine.arena import attach_index
from repro.intervals.batch import QueryBatch

__all__ = [
    "init_worker",
    "ping",
    "run_hint_chunk",
    "run_shard_primary",
    "encode_result",
    "decode_result",
]

_EMPTY = np.empty(0, dtype=np.int64)

# Populated by init_worker; one arena attach per worker process, reused
# for every task the worker ever runs.
_STATE: Dict[str, object] = {"shm": None, "index": None, "shards": None}


def init_worker(manifest: dict, pinned: Optional[List[int]] = None) -> None:
    """Pool initializer: attach the arena once, keep views for life.

    ``pinned`` restricts a sharded manifest to the shard numbers this
    worker serves (shard-affinity pools); ``None`` attaches everything.
    The segment mapping (``shm``) is parked alongside the views — the
    worker never closes it; the OS reclaims the mapping at process exit
    and only the owning process unlinks.
    """
    obj, shm = attach_index(manifest, shards=pinned)
    _STATE["shm"] = shm
    if manifest["kind"] == "hint":
        _STATE["index"] = obj
        _STATE["shards"] = None
    elif pinned is None:
        _STATE["index"] = obj  # a full ShardedHint
        _STATE["shards"] = obj.shards
    else:
        _STATE["index"] = None
        _STATE["shards"] = obj  # sparse list: _Shard at pinned slots


def ping() -> int:
    """Warm-up no-op; returns the worker pid (spawns + attaches eagerly)."""
    return os.getpid()


# --------------------------------------------------------------------- #
# compact result encoding
# --------------------------------------------------------------------- #


def encode_result(result: BatchResult, mode: str) -> Tuple[np.ndarray, ...]:
    """Flatten a chunk's :class:`BatchResult` into plain arrays.

    ``count`` → ``(counts,)``; ``checksum`` → ``(counts, checksums)``;
    ``ids`` → ``(counts, flat_ids, offsets)`` with query ``i`` of the
    chunk owning ``flat_ids[offsets[i]:offsets[i+1]]``.
    """
    if mode == "count":
        return (result.counts,)
    if mode == "checksum":
        return (result.counts, result.checksums)
    n = len(result)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(result.counts, out=offsets[1:])
    parts = [result.ids(i) for i in range(n)]
    flat = np.concatenate(parts) if parts else _EMPTY
    return (result.counts, flat, offsets)


def decode_result(payload: Tuple[np.ndarray, ...], mode: str) -> BatchResult:
    """Inverse of :func:`encode_result` (ids become zero-copy views)."""
    if mode == "count":
        return BatchResult(payload[0])
    if mode == "checksum":
        return BatchResult(payload[0], checksums=payload[1])
    counts, flat, offsets = payload
    ids = [
        flat[int(offsets[i]) : int(offsets[i + 1])]
        for i in range(counts.size)
    ]
    return BatchResult(counts, ids)


# --------------------------------------------------------------------- #
# task entry points (run in the worker process)
# --------------------------------------------------------------------- #


def run_hint_chunk(
    st: np.ndarray, end: np.ndarray, strategy: str, mode: str
) -> Tuple[np.ndarray, ...]:
    """Execute one contiguous chunk of the sorted batch on the index."""
    result = run_strategy(
        strategy, _STATE["index"], QueryBatch(st, end), mode=mode
    )
    return encode_result(result, mode)


def run_shard_primary(
    j: int, st: np.ndarray, end: np.ndarray, strategy: str, mode: str
) -> Tuple[np.ndarray, ...]:
    """Execute shard *j*'s pre-clipped primary sub-batch.

    The parent already routed the batch and clipped the slice into the
    shard's local domain (:meth:`ShardedHint._primary_local_batch`);
    replica/spill probes stay parent-side — they are single vectorized
    ``searchsorted`` calls, cheaper than a round-trip.
    """
    shard = _STATE["shards"][j]
    result = run_strategy(
        strategy, shard.index, QueryBatch(st, end), mode=mode
    )
    return encode_result(result, mode)
