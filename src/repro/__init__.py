"""repro — reproduction of "HINT on Steroids: Batch Query Processing for
Interval Data" (Bouros et al., EDBT 2024).

The package provides:

* :class:`~repro.intervals.IntervalCollection` /
  :class:`~repro.intervals.QueryBatch` — columnar interval data model;
* :class:`~repro.hint.HintIndex` — the hierarchical HINT index
  (plus :class:`~repro.hint.ReferenceHint`, the pseudocode-faithful
  executable specification);
* :func:`~repro.core.query_based`, :func:`~repro.core.level_based`,
  :func:`~repro.core.partition_based`, :func:`~repro.core.join_based` —
  the paper's batch evaluation strategies;
* :mod:`repro.grid` and :mod:`repro.baselines` — competitor indexes;
* :mod:`repro.workloads` — synthetic and realistic workload generators;
* :mod:`repro.analysis` — access-pattern traces, the LRU cache
  simulator, and the computation-sharing metric;
* :mod:`repro.service` — the micro-batching query service that forms
  batches from single-query traffic (size/deadline admission,
  backpressure, atomic index swaps);
* :mod:`repro.experiments` — runners regenerating every table and
  figure of the paper's evaluation;
* :mod:`repro.verify` — machine-checked structural invariants
  (:func:`~repro.verify.verify_index`, the ``debug_checks`` build flag)
  and deterministic fault injection (:class:`~repro.verify.FaultPlan`)
  for the service and the dynamic index;
* :mod:`repro.obs` — the opt-in observability plane (metrics registry,
  hierarchical tracing spans with a slow log, Prometheus/JSON
  exporters) every layer above publishes into; off by default at a
  benchmarked <5% overhead (see ``docs/observability.md``);
* :mod:`repro.shard` — :class:`~repro.shard.ShardedHint`, the
  domain-range sharded execution layer: ``k`` contiguous sub-domain
  HINT indexes behind the same ``execute`` surface, with exact merge
  of boundary-spanning queries (see ``docs/sharding.md``);
* :mod:`repro.engine` — :class:`~repro.engine.ExecutionEngine`, the
  process-parallel execution engine: the built index packed once into
  a shared-memory arena, persistent worker processes attaching
  zero-copy views, serial/threads/processes/compiled/auto backends
  behind the same ``execute`` surface (see ``docs/parallelism.md``);
* :mod:`repro.kernels` — compiled hot-path kernels for the GIL-bound
  inner loops (Numba JIT as the optional ``compiled`` extra, with a
  behaviour-identical pure-NumPy fallback selected at import time),
  behind :func:`~repro.kernels.compiled.compiled_run` — the same
  ``run_strategy`` contract (see ``docs/kernels.md``);
* :mod:`repro.cache` — :class:`~repro.cache.CachingExecutor`, the live
  result/partition cache in front of any backend (LRU byte budget,
  never-stale invalidation against :class:`~repro.hint.DynamicHint`
  mutations), plus :class:`~repro.cache.AffinityFlushPolicy`, the
  data-driven flush selector for the service (see ``docs/caching.md``).

Quickstart
----------
>>> import numpy as np
>>> from repro import IntervalCollection, QueryBatch, HintIndex, partition_based
>>> rng = np.random.default_rng(7)
>>> st = rng.integers(0, 950, size=500)
>>> coll = IntervalCollection(st, st + rng.integers(1, 50, size=500))
>>> index = HintIndex(coll, m=10)
>>> batch = QueryBatch([10, 500, 900], [40, 520, 999])
>>> result = partition_based(index, batch)
>>> len(result)
3
"""

from repro.intervals import (
    IntervalCollection,
    QueryBatch,
    load_intervals,
    save_intervals,
)
from repro.hint import (
    AllenSelection,
    DynamicHint,
    HintIndex,
    HintVariant,
    ReferenceHint,
    choose_m,
    load_index,
    save_index,
)
from repro.core import (
    BatchResult,
    query_based,
    level_based,
    partition_based,
    join_based,
    parallel_batch,
    run_strategy,
    STRATEGIES,
    recommend_strategy,
)
from repro.core.accumulator import BatchAccumulator
from repro.analysis import ServiceMetrics, analyze_batch
from repro.service import (
    BatchingQueryService,
    QueueFullError,
    ServiceClosedError,
)
from repro.grid import GridIndex, grid_query_based, grid_partition_based
from repro.baselines import (
    NaiveScan,
    IntervalTree,
    TimelineIndex,
    PeriodIndex,
    period_partition_based,
)
from repro.verify import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    InvariantViolation,
    verify_index,
)
from repro.shard import ShardedHint, load_sharded, save_sharded
from repro.engine import ExecutionEngine
from repro.cache import AffinityFlushPolicy, CachingExecutor, ResultCache

__version__ = "1.0.0"

__all__ = [
    "IntervalCollection",
    "QueryBatch",
    "load_intervals",
    "save_intervals",
    "HintIndex",
    "ReferenceHint",
    "HintVariant",
    "AllenSelection",
    "DynamicHint",
    "choose_m",
    "parallel_batch",
    "save_index",
    "load_index",
    "BatchResult",
    "query_based",
    "level_based",
    "partition_based",
    "join_based",
    "run_strategy",
    "STRATEGIES",
    "recommend_strategy",
    "GridIndex",
    "grid_query_based",
    "grid_partition_based",
    "NaiveScan",
    "IntervalTree",
    "TimelineIndex",
    "PeriodIndex",
    "period_partition_based",
    "BatchAccumulator",
    "BatchingQueryService",
    "QueueFullError",
    "ServiceClosedError",
    "ServiceMetrics",
    "analyze_batch",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "InvariantViolation",
    "verify_index",
    "ShardedHint",
    "save_sharded",
    "load_sharded",
    "ExecutionEngine",
    "CachingExecutor",
    "AffinityFlushPolicy",
    "ResultCache",
    "__version__",
]
