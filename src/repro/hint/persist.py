"""Saving and loading a built HINT index.

Index construction is a bulk operation (seconds for millions of
intervals); services that restart frequently want to mmap a prebuilt
index instead.  The format is a single ``.npz`` file holding every
level's subdivision arrays under systematic keys plus a small metadata
header — portable, versioned, and loadable with plain numpy.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.hint.index import HintIndex
from repro.hint.tables import LevelData, SubdivisionTable

__all__ = ["save_index", "load_index", "CLASS_KEYS", "TABLE_COLUMNS"]

PathLike = Union[str, pathlib.Path]

FORMAT_VERSION = 1

#: Systematic per-level table keys, in :meth:`LevelData.tables` order.
#: Shared layout metadata: the ``.npz`` archive format here and the
#: shared-memory arena manifest (:mod:`repro.engine.arena`) both
#: enumerate a :class:`HintIndex`'s arrays through these constants, so
#: the two serializations cannot drift.
CLASS_KEYS = ("o_in", "o_aft", "r_in", "r_aft")

#: Optional (nullable) array columns of a :class:`SubdivisionTable`, in
#: addition to the always-present ``offsets``/``ids``.
TABLE_COLUMNS = ("offsets", "ids", "st", "end", "comp")

# Backwards-compatible private aliases (pre-engine internal names).
_CLASS_KEYS = CLASS_KEYS
_COLUMNS = TABLE_COLUMNS


def save_index(index: HintIndex, path: PathLike) -> None:
    """Serialize *index* to ``path`` (numpy ``.npz``, compressed)."""
    payload = {
        "meta": np.array(
            [
                FORMAT_VERSION,
                index.m,
                index.num_intervals,
                int(index.storage_optimized),
            ],
            dtype=np.int64,
        )
    }
    for data in index.levels:
        for cls_key, table in zip(_CLASS_KEYS, data.tables()):
            prefix = f"L{data.level}_{cls_key}"
            payload[f"{prefix}_offsets"] = table.offsets
            payload[f"{prefix}_ids"] = table.ids
            payload[f"{prefix}_keybits"] = np.array(
                [table.key_bits], dtype=np.int64
            )
            for column in ("st", "end", "comp"):
                value = getattr(table, column)
                if value is not None:
                    payload[f"{prefix}_{column}"] = value
    np.savez_compressed(path, **payload)


def _check_archive_complete(archive, m: int) -> None:
    """Demand every level's mandatory keys before touching any of them.

    A truncated or doctored archive would otherwise surface as a bare
    ``KeyError`` deep in the load loop; diagnose it up front with the
    full list of what is missing.
    """
    present = set(archive.files)
    missing = []
    for level in range(m + 1):
        for cls_key in _CLASS_KEYS:
            prefix = f"L{level}_{cls_key}"
            for column in ("offsets", "ids", "keybits"):
                key = f"{prefix}_{column}"
                if key not in present:
                    missing.append(key)
    if missing:
        shown = ", ".join(missing[:6])
        more = f" (+{len(missing) - 6} more)" if len(missing) > 6 else ""
        raise ValueError(
            f"index archive is truncated or corrupted: m={m} requires "
            f"{4 * (m + 1)} level tables but {len(missing)} mandatory "
            f"key(s) are missing: {shown}{more}"
        )


def load_index(path: PathLike) -> HintIndex:
    """Load an index previously written by :func:`save_index`.

    Raises
    ------
    ValueError
        On a version mismatch, a malformed metadata header, or an
        archive whose level tables are incomplete for the stored ``m``.
    """
    with np.load(path) as archive:
        if "meta" not in archive.files:
            raise ValueError(
                "index archive is missing its 'meta' header; not a "
                "save_index archive?"
            )
        meta = archive["meta"]
        if meta.size != 4:
            raise ValueError(
                f"index archive 'meta' header has {meta.size} entries, "
                "expected 4"
            )
        version, m, num_intervals, storage_optimized = (int(v) for v in meta)
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        _check_archive_complete(archive, m)
        index = HintIndex.__new__(HintIndex)
        index.m = m
        index.num_intervals = num_intervals
        index.storage_optimized = bool(storage_optimized)
        index.debug_checks = False
        index._domain_top = (1 << m) - 1
        levels = []
        for level in range(m + 1):
            tables = []
            for cls_key in _CLASS_KEYS:
                prefix = f"L{level}_{cls_key}"
                tables.append(
                    SubdivisionTable(
                        offsets=archive[f"{prefix}_offsets"],
                        ids=archive[f"{prefix}_ids"],
                        st=archive.get(f"{prefix}_st"),
                        end=archive.get(f"{prefix}_end"),
                        comp=archive.get(f"{prefix}_comp"),
                        key_bits=int(archive[f"{prefix}_keybits"][0]),
                    )
                )
            levels.append(LevelData(level, *tables))
        index.levels = levels
        return index
