"""Selection queries under Allen's Algebra relationships.

The paper evaluates G-OVERLAPS but builds on the HINT version of the
VLDB Journal 2023 paper, which supports selection under *any* basic
Allen relationship.  This module adds that capability on top of the
columnar index with a two-phase plan per relationship:

1. **candidate pruning** — a G-OVERLAPS probe of the index over the
   tightest range that can contain qualifying intervals (for the
   disjoint relationships PRECEDES / PRECEDED-BY, sorted endpoint
   arrays answer the query directly without touching the index);
2. **exact vectorized filter** — the relationship predicate from
   :mod:`repro.intervals.relations` over the candidates' endpoints.

The engine keeps the collection's endpoint columns indexed by object id
so phase 2 is two gathers and one vectorized predicate.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.hint.index import HintIndex
from repro.intervals import relations
from repro.intervals.collection import IntervalCollection

__all__ = ["AllenSelection", "ALLEN_RELATIONS"]

#: relationship name -> predicate
ALLEN_RELATIONS: Dict[str, Callable] = {
    "equals": relations.allen_equals,
    "meets": relations.allen_meets,
    "met_by": relations.allen_met_by,
    "overlaps": relations.allen_overlaps,
    "overlapped_by": relations.allen_overlapped_by,
    "contains": relations.allen_contains,
    "contained_by": relations.allen_contained_by,
    "starts": relations.allen_starts,
    "started_by": relations.allen_started_by,
    "finishes": relations.allen_finishes,
    "finished_by": relations.allen_finished_by,
    "precedes": relations.allen_precedes,
    "preceded_by": relations.allen_preceded_by,
    "g_overlaps": relations.g_overlaps,
}


class AllenSelection:
    """Allen-relationship selection queries over a HINT index.

    Parameters
    ----------
    collection:
        The indexed collection (endpoints are needed for the exact
        filters; the index stores only what G-OVERLAPS requires).
    index:
        A :class:`~repro.hint.index.HintIndex` over *collection*; built
        automatically when omitted.

    Examples
    --------
    >>> from repro import IntervalCollection
    >>> coll = IntervalCollection.from_pairs([(2, 5), (5, 9), (0, 20)])
    >>> engine = AllenSelection(coll)
    >>> sorted(engine.query("meets", 5, 12))
    [0]
    """

    def __init__(self, collection: IntervalCollection, index: HintIndex = None):
        self._coll = collection
        if index is None:
            index = HintIndex(collection)
        self.index = index
        # id -> row lookup for the exact filter phase.
        order = np.argsort(collection.ids, kind="stable")
        self._ids_sorted = collection.ids[order]
        self._st_by_id = collection.st[order]
        self._end_by_id = collection.end[order]
        # Sorted endpoint arrays for the disjoint relationships.
        self._st_order = np.argsort(collection.st, kind="stable")
        self._end_order = np.argsort(collection.end, kind="stable")

    # ------------------------------------------------------------------ #

    def query(self, relation: str, q_st: int, q_end: int) -> np.ndarray:
        """Ids of intervals standing in *relation* to ``[q_st, q_end]``."""
        if q_st > q_end:
            raise ValueError("query must have st <= end")
        if relation not in ALLEN_RELATIONS:
            raise ValueError(
                f"unknown relation {relation!r}; "
                f"available: {sorted(ALLEN_RELATIONS)}"
            )
        if relation == "g_overlaps":
            return self.index.query(q_st, q_end)
        if relation == "precedes":
            # s.end < q_st: prefix of the end-sorted order.
            k = int(
                np.searchsorted(
                    self._coll.end[self._end_order], q_st, side="left"
                )
            )
            return self._coll.ids[self._end_order[:k]]
        if relation == "preceded_by":
            # s.st > q_end: suffix of the st-sorted order.
            k = int(
                np.searchsorted(
                    self._coll.st[self._st_order], q_end, side="right"
                )
            )
            return self._coll.ids[self._st_order[k:]]

        # Every remaining relationship implies G-OVERLAPS of the probe
        # range below, so the index prunes candidates exactly.
        probe = self._probe_range(relation, q_st, q_end)
        candidates = self.index.query(*probe)
        if candidates.size == 0:
            return candidates
        rows = np.searchsorted(self._ids_sorted, candidates)
        st = self._st_by_id[rows]
        end = self._end_by_id[rows]
        mask = ALLEN_RELATIONS[relation](st, end, q_st, q_end)
        return candidates[mask]

    def query_count(self, relation: str, q_st: int, q_end: int) -> int:
        """Number of intervals standing in *relation* to the query."""
        return int(self.query(relation, q_st, q_end).size)

    def query_batch(self, relation: str, batch, *, mode: str = "count"):
        """Evaluate a whole batch under one Allen relationship.

        Returns a :class:`~repro.core.result.BatchResult` in the
        caller's batch order.  Serial evaluation per query — the batch
        strategies of the paper target G-OVERLAPS; relation-specific
        batching is an open extension.
        """
        from repro.core.collector import make_collector

        collector = make_collector(mode, len(batch))
        for pos, (q_st, q_end) in enumerate(batch):
            ids = self.query(relation, q_st, q_end)
            if mode == "count":
                collector.add_count(pos, int(ids.size))
            else:
                collector.add_ids(pos, ids)
        return collector.finalize(np.arange(len(batch)))

    @staticmethod
    def _probe_range(relation: str, q_st: int, q_end: int) -> Tuple[int, int]:
        """The tightest G-OVERLAPS probe that covers all qualifiers."""
        if relation in ("meets", "starts", "equals", "started_by"):
            # qualifying intervals touch q_st
            return q_st, q_st
        if relation in ("met_by", "finishes", "finished_by"):
            # qualifying intervals touch q_end
            return q_end, q_end
        if relation in ("overlaps",):
            # s overlaps q's start
            return q_st, q_st
        if relation in ("overlapped_by",):
            return q_end, q_end
        if relation in ("contains",):
            # s covers all of q, so it certainly covers q_st
            return q_st, q_st
        # contained_by: s inside q
        return q_st, q_end
