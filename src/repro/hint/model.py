"""Choosing the HINT parameter ``m``.

The paper sets ``m`` per dataset "using the cost model and the analysis
in [10]" (10 for BOOKS, 12 for WEBKIT, 17 for TAXIS and GREEND).  We do
not have the closed-form model of the SIGMOD'22 paper, so this module
offers two substitutes:

* :func:`choose_m` — a closed-form heuristic balancing two costs that the
  model trades off: scanning partitions that are too coarse (pushes ``m``
  up, driven by how many intervals share a bottom partition) and
  replicating/visiting too many partitions (pushes ``m`` down, driven by
  interval duration relative to the domain).
* :func:`tune_m` — an empirical tuner that builds candidate indexes on a
  sample and picks the fastest against a probe batch, which is what the
  cost model approximates analytically.

Both return values in ``[1, max_m]``; the default cap keeps the
per-level offset arrays (``2**m`` entries) reasonable for a Python
process.
"""

from __future__ import annotations

import math
import time
from typing import Optional, Sequence

import numpy as np

__all__ = ["choose_m", "tune_m", "DEFAULT_MAX_M"]

DEFAULT_MAX_M = 20


def choose_m(
    collection,
    *,
    max_m: int = DEFAULT_MAX_M,
    target_partition_fill: int = 64,
) -> int:
    """Heuristic ``m`` for *collection*.

    Two requirements are balanced:

    * enough levels that a bottom partition holds roughly
      ``target_partition_fill`` intervals — fewer levels mean long scans
      of coarse partitions (this favours large ``m`` for the short-
      interval datasets, matching the paper's ``m = 17`` for TAXIS and
      GREEND);
    * not so many levels that the average interval, whose placement depth
      is governed by ``duration / domain``, is pushed into excessive
      per-level bookkeeping (this favours moderate ``m`` for the
      long-interval datasets, matching ``m = 10`` / ``12`` for BOOKS and
      WEBKIT).
    """
    n = len(collection)
    if n == 0:
        return 1
    stats = collection.stats()
    domain = max(stats.domain_length, 2)

    # Level where a partition holds ~target_partition_fill intervals,
    # assuming spread proportional to the data distribution.
    m_fill = math.ceil(math.log2(max(n / target_partition_fill, 2)))

    # Level where a partition is about as long as the average interval —
    # deeper levels only add replicas for the average object.
    avg_dur = max(stats.avg_duration, 1.0)
    m_dur = math.ceil(math.log2(max(domain / avg_dur, 2)))

    m = min(m_fill, m_dur + 4)  # allow a few levels below the duration scale
    m = max(1, min(m, max_m, math.ceil(math.log2(domain))))

    # The index stores raw endpoints: m must cover the collection's
    # occupied domain.  For large raw domains this floor dominates the
    # heuristic (and the cap) — normalize the collection first
    # (``collection.normalized(m)``) to index at a chosen resolution.
    m_needed = int(stats.domain_end).bit_length()
    return int(max(m, m_needed))


def tune_m(
    collection,
    queries,
    *,
    candidates: Optional[Sequence[int]] = None,
    sample_size: int = 200_000,
    probe_queries: int = 200,
    seed: int = 0,
    index_factory=None,
) -> int:
    """Pick ``m`` empirically: build candidates on a sample, time a probe.

    Parameters
    ----------
    collection:
        The full collection; a random sample of up to *sample_size*
        intervals is indexed per candidate.
    queries:
        A :class:`~repro.intervals.QueryBatch`; up to *probe_queries*
        random queries are timed (count-only, so timing reflects index
        traversal rather than result materialization).
    candidates:
        Candidate ``m`` values; default spans around :func:`choose_m`.
    index_factory:
        ``f(collection, m) -> index`` — injectable for tests; defaults to
        :class:`~repro.hint.index.HintIndex`.
    """
    from repro.hint.index import HintIndex

    if index_factory is None:
        index_factory = HintIndex
    if candidates is None:
        center = choose_m(collection)
        candidates = sorted(
            {max(1, center - 4), max(1, center - 2), center,
             min(DEFAULT_MAX_M, center + 2), min(DEFAULT_MAX_M, center + 4)}
        )
    rng = np.random.default_rng(seed)
    if len(collection) > sample_size:
        pick = rng.choice(len(collection), size=sample_size, replace=False)
        sample = collection[np.sort(pick)]
    else:
        sample = collection
    if len(queries) > probe_queries:
        pick = rng.choice(len(queries), size=probe_queries, replace=False)
        probe = [(int(queries.st[i]), int(queries.end[i])) for i in pick]
    else:
        probe = [(int(s), int(e)) for s, e in zip(queries.st, queries.end)]

    best_m, best_time = None, math.inf
    for m in candidates:
        top = (1 << m) - 1
        index = index_factory(sample.normalized(m), m)
        scale = top / max(sample.stats().domain_length - 1, 1)
        t0 = time.perf_counter()
        for q_st, q_end in probe:
            index.query_count(int(q_st * scale), int(q_end * scale))
        elapsed = time.perf_counter() - t0
        if elapsed < best_time:
            best_m, best_time = m, elapsed
    return int(best_m)
