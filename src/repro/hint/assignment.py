"""Interval-to-partition assignment.

Every interval is stored in the *smallest* set of partitions, across all
levels, that exactly tiles it — at most two partitions per level.  The
classic assignment walks the endpoints bottom-up: whenever the left
cursor ``a`` is a right child (odd) the partition ``P_{l,a}`` is taken;
whenever the right cursor ``b`` is a left child (even) the partition
``P_{l,b}`` is taken; both cursors then move to the parent level.

Within a partition ``P`` an interval is

* an **original** when it starts inside ``P`` (class ``O``), and a
  **replica** otherwise (class ``R``);
* in the ``in`` subdivision when it ends inside ``P``, in the ``aft``
  subdivision when it ends after ``P``.

Two implementations are provided: :func:`assign_interval` (scalar,
pseudocode-faithful, used by the reference index and the tests) and
:func:`assign_collection` (vectorized over the whole collection, used by
the production index builder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.hint.bits import level_prefix, validate_domain

__all__ = [
    "Assignment",
    "CLASS_O_IN",
    "CLASS_O_AFT",
    "CLASS_R_IN",
    "CLASS_R_AFT",
    "CLASS_NAMES",
    "assign_interval",
    "assign_collection",
]

# Subdivision class codes, fixed across the whole code base.
CLASS_O_IN = 0
CLASS_O_AFT = 1
CLASS_R_IN = 2
CLASS_R_AFT = 3
CLASS_NAMES = ("O_in", "O_aft", "R_in", "R_aft")


@dataclass(frozen=True)
class Assignment:
    """One placement of an interval: level, partition, subdivision class."""

    level: int
    partition: int
    cls: int

    @property
    def is_original(self) -> bool:
        return self.cls in (CLASS_O_IN, CLASS_O_AFT)

    @property
    def ends_inside(self) -> bool:
        return self.cls in (CLASS_O_IN, CLASS_R_IN)

    @property
    def class_name(self) -> str:
        return CLASS_NAMES[self.cls]


def _classify(m: int, level: int, partition: int, st: int, end: int) -> int:
    """Subdivision class of interval ``[st, end]`` inside ``P_{level,partition}``."""
    original = level_prefix(m, level, st) == partition
    inside = level_prefix(m, level, end) == partition
    if original:
        return CLASS_O_IN if inside else CLASS_O_AFT
    return CLASS_R_IN if inside else CLASS_R_AFT


def assign_interval(m: int, st: int, end: int) -> List[Assignment]:
    """Partitions storing interval ``[st, end]`` in HINT with parameter *m*.

    Returns the placements in bottom-up level order.  The paper's
    guarantees, asserted by the property-based tests, are:

    * at most two partitions per level;
    * the selected partitions exactly tile ``[st, end]``;
    * exactly one placement is an original (``O``) — the partition that
      contains ``st``.
    """
    if st > end:
        raise ValueError("interval must have st <= end")
    validate_domain(m, st, end)
    out: List[Assignment] = []
    a, b = st, end
    level = m
    while level >= 0 and a <= b:
        if a & 1:  # right child: take it, move right
            out.append(Assignment(level, a, _classify(m, level, a, st, end)))
            a += 1
        if not (b & 1):  # left child: take it, move left
            out.append(Assignment(level, b, _classify(m, level, b, st, end)))
            b -= 1
        a >>= 1
        b >>= 1
        level -= 1
    return out


def assign_collection(
    m: int, st: np.ndarray, end: np.ndarray
) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Vectorized assignment of a whole collection.

    Parameters
    ----------
    m:
        HINT parameter; domain is ``[0, 2**m - 1]``.
    st, end:
        int64 endpoint arrays (validated against the domain).

    Returns
    -------
    dict
        ``level -> (row_indices, partitions, classes)``, where the three
        arrays are parallel and describe every placement at that level.
        Levels with no placements are omitted.
    """
    validate_domain(m, st, end)
    n = st.size
    if n == 0:
        return {}
    a = st.astype(np.int64, copy=True)
    b = end.astype(np.int64, copy=True)
    rows = np.arange(n, dtype=np.int64)
    done = np.zeros(n, dtype=bool)
    per_level: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    for level in range(m, -1, -1):
        shift = m - level
        active = ~done
        if not active.any():
            break
        chunks_rows: List[np.ndarray] = []
        chunks_parts: List[np.ndarray] = []

        take_a = active & ((a & 1) == 1)
        if take_a.any():
            chunks_rows.append(rows[take_a])
            chunks_parts.append(a[take_a])
            a[take_a] += 1

        take_b = active & ((b & 1) == 0)
        if take_b.any():
            chunks_rows.append(rows[take_b])
            chunks_parts.append(b[take_b])
            b[take_b] -= 1

        done |= a > b
        a >>= 1
        b >>= 1

        if not chunks_rows:
            continue
        lvl_rows = np.concatenate(chunks_rows)
        lvl_parts = np.concatenate(chunks_parts)
        # Subdivision class from the endpoint prefixes at this level.
        st_pref = st[lvl_rows] >> shift
        end_pref = end[lvl_rows] >> shift
        original = st_pref == lvl_parts
        inside = end_pref == lvl_parts
        classes = np.where(
            original,
            np.where(inside, CLASS_O_IN, CLASS_O_AFT),
            np.where(inside, CLASS_R_IN, CLASS_R_AFT),
        ).astype(np.int8)
        per_level[level] = (lvl_rows, lvl_parts, classes)
    return per_level
