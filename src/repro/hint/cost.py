"""Analytical query-cost model for HINT — choosing ``m`` like the paper.

The paper sets ``m`` per dataset "using the cost model and the analysis
in [10]" (HINT, SIGMOD'22).  This module reconstructs that style of
model for the columnar build: the expected cost of one selection query
against an index with parameter ``m`` decomposes into

* **partition visits** — at level ``l`` a query of extent ``e`` over
  domain ``2**m`` overlaps ``e / 2**(m-l) + 1`` partitions on average;
  every visited partition costs fixed bookkeeping;
* **comparison rows** — endpoint comparisons only happen at the first
  and last relevant partitions while the ``compfirst`` / ``complast``
  flags survive; bottom-up, each flag survives a level with probability
  1/2, so level ``m - k`` contributes with weight ``2**-k``.  The rows
  scanned there are the level's average partition fill, obtained from
  the *actual* assignment of (a sample of) the collection;
* **result rows** — independent of ``m`` (every qualifying interval is
  reported exactly once), so they do not influence the choice.

:func:`choose_m_model` evaluates the model over candidate values and
returns the minimizer.

A calibration note: the model is tuned to *this columnar build*, where
the comparison-free middle of a level is one slice (O(1)) regardless of
how many partitions it spans.  It therefore prefers shallower
hierarchies than the paper (m = 10-12 where the paper used 17 for
TAXIS/GREEND) — and measurement confirms that preference is correct
here: on the TAXIS clone, query-based is fastest at m = 10 and
partition-based at m = 12-14.  The experiment harness still uses the
paper's ``m`` values for comparability; this model is for users
deploying the library on their own workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.hint.assignment import assign_collection
from repro.intervals.collection import IntervalCollection

__all__ = ["CostEstimate", "estimate_query_cost", "choose_m_model"]

#: Relative weight of visiting a partition versus comparing one row.
#: In the columnar build a partition visit is a handful of offset
#: lookups and a binary-search probe — worth roughly this many per-row
#: comparisons.
DEFAULT_VISIT_WEIGHT = 24.0


@dataclass(frozen=True)
class CostEstimate:
    """Expected per-query cost decomposition for one value of ``m``."""

    m: int
    partition_visits: float
    comparison_rows: float
    visit_weight: float

    @property
    def total(self) -> float:
        """Scalar cost used for minimization."""
        return self.visit_weight * self.partition_visits + self.comparison_rows


def estimate_query_cost(
    collection: IntervalCollection,
    m: int,
    extent: int,
    *,
    visit_weight: float = DEFAULT_VISIT_WEIGHT,
    sample_size: int = 100_000,
    seed: int = 0,
) -> CostEstimate:
    """Expected cost of one query of absolute *extent* at parameter *m*.

    The collection (or a random sample of it) is normalized into the
    ``m``-bit domain and assigned, yielding the exact per-level fills
    the comparison term needs.
    """
    if m < 0:
        raise ValueError("m must be non-negative")
    if extent < 1:
        raise ValueError("extent must be positive")
    n = len(collection)
    if n == 0:
        return CostEstimate(m, float(m + 1), 0.0, visit_weight)
    if n > sample_size:
        rng = np.random.default_rng(seed)
        rows = np.sort(rng.choice(n, size=sample_size, replace=False))
        collection = collection[rows]
        n = sample_size
    domain_length = collection.stats().domain_length
    normalized = collection.normalized(m)
    # Extent expressed in the normalized domain.
    extent_norm = max(1.0, extent * ((1 << m) / max(domain_length, 1)))

    placements = assign_collection(m, normalized.st, normalized.end)
    visits = 0.0
    comparisons = 0.0
    for level in range(m + 1):
        num_partitions = 1 << level
        extent_partitions = extent_norm / (1 << (m - level))
        relevant = min(num_partitions, extent_partitions + 1.0)
        visits += relevant
        rows, _, _ = placements.get(level, (None, None, None))
        level_rows = 0 if rows is None else rows.size
        avg_fill = level_rows / num_partitions
        # Two flag-carrying partitions (first and last) at the bottom
        # level; each flag survives upward with probability 1/2.
        survive = 0.5 ** (m - level)
        comparisons += 2.0 * avg_fill * survive
    return CostEstimate(m, visits, comparisons, visit_weight)


def choose_m_model(
    collection: IntervalCollection,
    *,
    extent_pct: float = 0.1,
    candidates: Optional[Sequence[int]] = None,
    visit_weight: float = DEFAULT_VISIT_WEIGHT,
    sample_size: int = 100_000,
    seed: int = 0,
) -> int:
    """Pick ``m`` by minimizing the analytical query cost.

    Parameters
    ----------
    collection:
        The data to index (raw domain; normalization is part of the
        evaluation).
    extent_pct:
        The expected query extent as a percentage of the domain (the
        paper's default workload is 0.1 %).
    candidates:
        Values of ``m`` to evaluate; default ``5 .. 22``.
    """
    if len(collection) == 0:
        return 1
    if candidates is None:
        candidates = range(5, 23)
    domain_length = collection.stats().domain_length
    extent = max(1, round(domain_length * extent_pct / 100.0))
    best_m, best_cost = None, float("inf")
    for m in candidates:
        estimate = estimate_query_cost(
            collection,
            int(m),
            extent,
            visit_weight=visit_weight,
            sample_size=sample_size,
            seed=seed,
        )
        if estimate.total < best_cost:
            best_m, best_cost = int(m), estimate.total
    return best_m


def cost_profile(
    collection: IntervalCollection,
    *,
    extent_pct: float = 0.1,
    candidates: Optional[Sequence[int]] = None,
    **kwargs,
) -> Dict[int, CostEstimate]:
    """Cost estimates for every candidate ``m`` (for inspection/plots)."""
    if candidates is None:
        candidates = range(5, 23)
    domain_length = max(collection.stats().domain_length, 1)
    extent = max(1, round(domain_length * extent_pct / 100.0))
    return {
        int(m): estimate_query_cost(collection, int(m), extent, **kwargs)
        for m in candidates
    }
