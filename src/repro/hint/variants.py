"""HINT optimization variants — each Section 2 optimization, toggleable.

The paper builds its strategies on the "subs+sort" HINT version: the
*subdivisions* optimization (``P_O``/``P_R`` split into
``O_in``/``O_aft``/``R_in``/``R_aft``) plus the beneficial *sorting* of
each subdivision.  To measure what those optimizations contribute — the
HINT SIGMOD'22 ablation, reproduced here as experiment A5 —
:class:`HintVariant` implements the index with both switches exposed:

* ``subdivisions=False`` stores the plain ``P_O`` / ``P_R`` classes per
  partition (endpoint comparisons cannot be elided by the in/aft case
  analysis);
* ``sorted_partitions=False`` keeps partition contents in insertion
  order (comparisons become linear mask scans instead of binary
  searches).

Variants answer single queries and query-based batches.  The advanced
batch strategies intentionally live only on the fully optimized
:class:`~repro.hint.index.HintIndex` — exactly like the paper, which
runs its strategies on subs+sort.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.collector import make_collector
from repro.core.result import BatchResult
from repro.hint.assignment import (
    CLASS_O_AFT,
    CLASS_O_IN,
    CLASS_R_AFT,
    CLASS_R_IN,
    assign_collection,
)
from repro.hint.bits import validate_domain
from repro.intervals.batch import QueryBatch
from repro.intervals.collection import IntervalCollection

__all__ = ["HintVariant"]

_EMPTY = np.empty(0, dtype=np.int64)


class _Table:
    """One class table of one level: partition-ordered parallel arrays."""

    __slots__ = ("offsets", "ids", "st", "end", "sort_key")

    def __init__(self, num_partitions, parts, ids, st, end, sort_key):
        if parts.size == 0:
            self.offsets = np.zeros(num_partitions + 1, dtype=np.int64)
            self.ids = _EMPTY
            self.st = _EMPTY
            self.end = _EMPTY
            self.sort_key = sort_key
            return
        if sort_key == "st":
            order = np.lexsort((st, parts))
        elif sort_key == "end":
            order = np.lexsort((end, parts))
        else:
            order = np.argsort(parts, kind="stable")
        parts = parts[order]
        self.offsets = np.zeros(num_partitions + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(parts, minlength=num_partitions), out=self.offsets[1:]
        )
        self.ids = np.ascontiguousarray(ids[order])
        self.st = np.ascontiguousarray(st[order])
        self.end = np.ascontiguousarray(end[order])
        self.sort_key = sort_key

    def __len__(self) -> int:
        return int(self.ids.size)

    def bounds(self, partition: int):
        return int(self.offsets[partition]), int(self.offsets[partition + 1])

    # ----- per-partition selections ----------------------------------- #

    def select_all(self, partition, emit):
        lo, hi = self.bounds(partition)
        if hi > lo:
            emit(self.ids[lo:hi])

    def select_st_leq(self, partition, q_end, emit):
        """Rows with ``s.st <= q_end``."""
        lo, hi = self.bounds(partition)
        if hi <= lo:
            return
        if self.sort_key == "st":
            k = int(np.searchsorted(self.st[lo:hi], q_end, side="right"))
            if k:
                emit(self.ids[lo : lo + k])
        else:
            mask = self.st[lo:hi] <= q_end
            if mask.any():
                emit(self.ids[lo:hi][mask])

    def select_end_geq(self, partition, q_st, emit):
        """Rows with ``s.end >= q_st``."""
        lo, hi = self.bounds(partition)
        if hi <= lo:
            return
        if self.sort_key == "end":
            k = int(np.searchsorted(self.end[lo:hi], q_st, side="left"))
            if hi > lo + k:
                emit(self.ids[lo + k : hi])
        else:
            mask = self.end[lo:hi] >= q_st
            if mask.any():
                emit(self.ids[lo:hi][mask])

    def select_both(self, partition, q_st, q_end, emit):
        """Rows with ``s.st <= q_end`` and ``s.end >= q_st``."""
        lo, hi = self.bounds(partition)
        if hi <= lo:
            return
        if self.sort_key == "st":
            k = int(np.searchsorted(self.st[lo:hi], q_end, side="right"))
            if k == 0:
                return
            mask = self.end[lo : lo + k] >= q_st
            if mask.any():
                emit(self.ids[lo : lo + k][mask])
        else:
            mask = (self.st[lo:hi] <= q_end) & (self.end[lo:hi] >= q_st)
            if mask.any():
                emit(self.ids[lo:hi][mask])


class HintVariant:
    """HINT with the Section 2 optimizations individually toggleable.

    Parameters
    ----------
    collection, m:
        As for :class:`~repro.hint.index.HintIndex`.
    subdivisions:
        Split ``P_O``/``P_R`` into the four in/aft subdivisions (enables
        eliding implied comparisons).
    sorted_partitions:
        Keep partition contents sorted by the class's beneficial key
        (enables binary-search prefixes/suffixes instead of scans).
    """

    def __init__(
        self,
        collection: IntervalCollection,
        m: int,
        *,
        subdivisions: bool = True,
        sorted_partitions: bool = True,
    ):
        if m < 0:
            raise ValueError("m must be non-negative")
        validate_domain(m, collection.st, collection.end)
        self.m = int(m)
        self.subdivisions = bool(subdivisions)
        self.sorted_partitions = bool(sorted_partitions)
        self.num_intervals = len(collection)
        self._domain_top = (1 << self.m) - 1
        self._levels = self._build(collection)

    def _build(self, coll: IntervalCollection):
        placements = assign_collection(self.m, coll.st, coll.end)
        levels = []
        key_if = lambda key: key if self.sorted_partitions else None  # noqa: E731
        for level in range(self.m + 1):
            rows, parts, classes = placements.get(
                level, (_EMPTY, _EMPTY, _EMPTY.astype(np.int8))
            )
            num_partitions = 1 << level

            def table(mask, sort_key):
                sel = rows[mask]
                return _Table(
                    num_partitions,
                    parts[mask],
                    coll.ids[sel],
                    coll.st[sel],
                    coll.end[sel],
                    key_if(sort_key),
                )

            is_original = (classes == CLASS_O_IN) | (classes == CLASS_O_AFT)
            if self.subdivisions:
                levels.append(
                    {
                        "O_in": table(classes == CLASS_O_IN, "st"),
                        "O_aft": table(classes == CLASS_O_AFT, "st"),
                        "R_in": table(classes == CLASS_R_IN, "end"),
                        "R_aft": table(classes == CLASS_R_AFT, None),
                    }
                )
            else:
                levels.append(
                    {
                        "O": table(is_original, "st"),
                        "R": table(~is_original, "end"),
                    }
                )
        return levels

    def __len__(self) -> int:
        return self.num_intervals

    def __repr__(self) -> str:
        return (
            f"HintVariant(m={self.m}, subdivisions={self.subdivisions}, "
            f"sorted={self.sorted_partitions}, n={self.num_intervals})"
        )

    # ------------------------------------------------------------------ #

    def _clip(self, q_st: int, q_end: int):
        if q_st > q_end:
            raise ValueError("query must have st <= end")
        clamp = lambda v: min(max(int(v), 0), self._domain_top)  # noqa: E731
        return clamp(q_st), clamp(q_end)

    def query(self, q_st: int, q_end: int) -> np.ndarray:
        """Ids of all intervals G-overlapping ``[q_st, q_end]``."""
        q_st, q_end = self._clip(q_st, q_end)
        out: List[np.ndarray] = []
        self._run(q_st, q_end, out.append)
        if not out:
            return _EMPTY
        return np.concatenate(out)

    def query_count(self, q_st: int, q_end: int) -> int:
        """Number of intervals G-overlapping ``[q_st, q_end]``."""
        return int(self.query(q_st, q_end).size)

    def _run(self, q_st, q_end, emit) -> None:
        compfirst = True
        complast = True
        for level in range(self.m, -1, -1):
            shift = self.m - level
            f = q_st >> shift
            l = q_end >> shift
            tables = self._levels[level]
            if self.subdivisions:
                self._first_subs(tables, f, l, q_st, q_end, compfirst, complast, emit)
            else:
                self._first_plain(tables, f, l, q_st, q_end, compfirst, complast, emit)
            if l > f:
                originals = (
                    (tables["O_in"], tables["O_aft"])
                    if self.subdivisions
                    else (tables["O"],)
                )
                for table in originals:
                    # in-between partitions: contiguous, comparison-free
                    lo = int(table.offsets[f + 1])
                    hi = int(table.offsets[l])
                    if hi > lo:
                        emit(table.ids[lo:hi])
                    # last partition
                    if complast:
                        table.select_st_leq(l, q_end, emit)
                    else:
                        table.select_all(l, emit)
            if f % 2 == 0:
                compfirst = False
            if l % 2 == 1:
                complast = False

    def _first_subs(self, t, f, l, q_st, q_end, compfirst, complast, emit):
        if f == l and compfirst and complast:
            t["O_in"].select_both(f, q_st, q_end, emit)
            t["O_aft"].select_st_leq(f, q_end, emit)
            t["R_in"].select_end_geq(f, q_st, emit)
            t["R_aft"].select_all(f, emit)
        elif compfirst:
            t["O_in"].select_end_geq(f, q_st, emit)
            t["O_aft"].select_all(f, emit)
            t["R_in"].select_end_geq(f, q_st, emit)
            t["R_aft"].select_all(f, emit)
        elif f == l and complast:
            t["O_in"].select_st_leq(f, q_end, emit)
            t["O_aft"].select_st_leq(f, q_end, emit)
            t["R_in"].select_all(f, emit)
            t["R_aft"].select_all(f, emit)
        else:
            for name in ("O_in", "O_aft", "R_in", "R_aft"):
                t[name].select_all(f, emit)

    def _first_plain(self, t, f, l, q_st, q_end, compfirst, complast, emit):
        """Lines 7-17 of Algorithm 1 on unoptimized P_O / P_R."""
        if f == l and compfirst and complast:
            t["O"].select_both(f, q_st, q_end, emit)
            t["R"].select_end_geq(f, q_st, emit)
        elif compfirst:
            t["O"].select_end_geq(f, q_st, emit)
            t["R"].select_end_geq(f, q_st, emit)
        elif f == l and complast:
            t["O"].select_st_leq(f, q_end, emit)
            t["R"].select_all(f, emit)
        else:
            t["O"].select_all(f, emit)
            t["R"].select_all(f, emit)

    # ------------------------------------------------------------------ #

    def batch_query_based(
        self, batch: QueryBatch, *, sort: bool = False, mode: str = "count"
    ) -> BatchResult:
        """Serial (query-based) batch evaluation on this variant."""
        work = batch.sorted_by_start() if sort else batch
        collector = make_collector(mode, len(work))
        for pos, (q_st, q_end) in enumerate(work):
            if mode == "count":
                collector.add_count(pos, self.query_count(q_st, q_end))
            else:
                collector.add_ids(pos, self.query(q_st, q_end))
        return collector.finalize(work.order)
