"""The production (columnar) HINT index and Algorithm 1.

:class:`HintIndex` builds the full hierarchy in one vectorized pass and
answers single selection queries bottom-up exactly as Algorithm 1 of the
paper, including the ``compfirst`` / ``complast`` pruning flags, the
subdivision-aware comparison rules and the duplicate-avoidance rules
(replicas only at the first relevant partition; only originals at the
others).

One consequence of the merged per-level layout is worth calling out: the
originals of all *in-between* partitions ``f+1 .. l-1`` of a query — the
partitions Algorithm 1 reports without any comparison — occupy a single
contiguous row range, so the whole middle of a level is answered with
one slice per originals table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.hint.assignment import assign_collection
from repro.hint.bits import validate_domain
from repro.hint.model import choose_m
from repro.hint.tables import LevelData, SubdivisionTable, build_level_data
from repro.intervals.collection import IntervalCollection

__all__ = ["HintIndex"]

_EMPTY = np.empty(0, dtype=np.int64)


class HintIndex:
    """Hierarchical index for intervals over the domain ``[0, 2**m - 1]``.

    Parameters
    ----------
    collection:
        The input interval collection ``S``.  All endpoints must already
        lie inside the domain (use
        :meth:`~repro.intervals.IntervalCollection.normalized` first if
        they do not).
    m:
        Number of bits of the domain; the index has ``m + 1`` levels.
        When omitted, a value is chosen with
        :func:`repro.hint.model.choose_m`.  Memory note: the per-level
        offsets arrays are dense (``2**level + 1`` entries each, about
        ``2**(m+6)`` bytes across all classes and levels), so ``m`` above
        ~24 costs gigabytes before any data is stored — normalize into a
        coarser domain instead, or pick ``m`` with
        :func:`repro.hint.cost.choose_m_model`.
    storage_optimized:
        Drop endpoint columns that query processing never reads.
    precompute_aux:
        Eagerly build the lazy per-table auxiliary arrays
        (:attr:`~repro.hint.tables.SubdivisionTable.xor_prefix`) at the
        end of the build.  Off by default — count-only workloads never
        need them — but build paths feeding checksum-heavy serving (or
        the shared-memory arena of :mod:`repro.engine`, which packs
        them) should turn it on so no query thread pays the lazy build.
    debug_checks:
        Run the structural invariant validators
        (:func:`repro.verify.invariants.verify_index`) against the
        freshly built hierarchy, including the deep re-assignment check
        against *collection*.  Roughly doubles build cost; intended for
        tests and debugging, off in production.

    Examples
    --------
    >>> from repro import IntervalCollection, HintIndex
    >>> coll = IntervalCollection.from_pairs([(2, 5), (4, 4), (0, 15)])
    >>> index = HintIndex(coll, m=4)
    >>> sorted(index.query(4, 6))
    [0, 1, 2]
    """

    def __init__(
        self,
        collection: IntervalCollection,
        m: Optional[int] = None,
        *,
        storage_optimized: bool = True,
        precompute_aux: bool = False,
        debug_checks: bool = False,
    ):
        if m is None:
            m = choose_m(collection)
        if m < 0:
            raise ValueError("m must be non-negative")
        if m > 30:
            # 2**m offset entries per level table and packed
            # (partition, key) probe keys of 2m bits: beyond 30 bits the
            # index stops being a main-memory structure and the packing
            # approaches int64 limits.  Normalize the collection into a
            # coarser domain instead.
            raise ValueError(
                f"m={m} is not supported (maximum 30); normalize the "
                "collection into a coarser domain"
            )
        validate_domain(m, collection.st, collection.end)
        self.m = int(m)
        self.num_intervals = len(collection)
        self.storage_optimized = bool(storage_optimized)
        self.debug_checks = bool(debug_checks)
        self._domain_top = (1 << self.m) - 1
        self.levels: List[LevelData] = self._build(collection)
        if precompute_aux:
            self.precompute_aux()
        if self.debug_checks:
            # Imported here: repro.verify depends on this module.
            from repro.verify.invariants import verify_index

            verify_index(self, collection=collection)

    # ------------------------------------------------------------------ #
    # build
    # ------------------------------------------------------------------ #

    def _build(self, collection: IntervalCollection) -> List[LevelData]:
        placements = assign_collection(self.m, collection.st, collection.end)
        levels = []
        for level in range(self.m + 1):
            rows, parts, classes = placements.get(
                level, (_EMPTY, _EMPTY, _EMPTY.astype(np.int8))
            )
            levels.append(
                build_level_data(
                    level,
                    rows,
                    parts,
                    classes,
                    collection.ids,
                    collection.st,
                    collection.end,
                    storage_optimized=self.storage_optimized,
                    key_bits=max(self.m, 1),
                )
            )
        return levels

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def domain(self) -> tuple:
        """The closed index domain ``(0, 2**m - 1)``."""
        return (0, self._domain_top)

    def __len__(self) -> int:
        return self.num_intervals

    def __repr__(self) -> str:
        return (
            f"HintIndex(m={self.m}, n={self.num_intervals}, "
            f"placements={self.num_placements()})"
        )

    def num_placements(self) -> int:
        """Total interval placements across all levels (replication incl.)."""
        return sum(level.total() for level in self.levels)

    def replication_factor(self) -> float:
        """Average number of partitions an interval is stored in."""
        if self.num_intervals == 0:
            return 0.0
        return self.num_placements() / self.num_intervals

    def nbytes(self) -> int:
        """Approximate memory footprint of the level tables."""
        return sum(level.nbytes() for level in self.levels)

    def precompute_aux(self) -> None:
        """Eagerly build every table's lazy auxiliary arrays.

        Build/attach paths call this when checksum-mode traffic is
        expected (the service warm-up, the shared-memory arena pack in
        :mod:`repro.engine`), so the per-table ``xor_prefix`` arrays are
        materialized once, up front, instead of lazily — and racily —
        on the first checksum flush.  Idempotent and thread-safe.
        """
        for level in self.levels:
            level.precompute_aux()

    def level_histogram(self) -> Dict[int, int]:
        """Placements per level — shows where durations put intervals."""
        return {level.level: level.total() for level in self.levels}

    def as_collection(self) -> IntervalCollection:
        """Reconstruct the indexed collection from the level tables.

        Every interval has exactly one *original* placement (O_in or
        O_aft — stores ``st``) and exactly one *ends-inside* placement
        (O_in or R_in — stores ``end``), and the storage-optimized
        layout keeps precisely those columns, so the full ``<id, st,
        end>`` collection is always recoverable.  Consumers that need
        the raw data — the join-based strategy, re-sharding — get it
        without the caller having to retain the build input.  The
        result is cached on the index (both are immutable).
        """
        cached = getattr(self, "_collection_cache", None)
        if cached is not None:
            return cached
        orig_ids, orig_st, in_ids, in_end = [], [], [], []
        for data in self.levels:
            o_in, o_aft, r_in, _ = data.tables()
            for table in (o_in, o_aft):
                if table.ids.size:  # empty tables carry st=None
                    orig_ids.append(table.ids)
                    orig_st.append(table.st)
            for table in (o_in, r_in):
                if table.ids.size:
                    in_ids.append(table.ids)
                    in_end.append(table.end)
        ids = np.concatenate(orig_ids) if orig_ids else _EMPTY
        st = np.concatenate(orig_st) if orig_st else _EMPTY
        order = np.argsort(ids, kind="stable")
        end_ids = np.concatenate(in_ids) if in_ids else _EMPTY
        end = np.concatenate(in_end) if in_end else _EMPTY
        coll = IntervalCollection(
            st[order],
            end[np.argsort(end_ids, kind="stable")],
            ids[order],
            copy=False,
        )
        self._collection_cache = coll
        return coll

    # ------------------------------------------------------------------ #
    # single-query processing (Algorithm 1)
    # ------------------------------------------------------------------ #

    def _clip(self, q_st: int, q_end: int) -> tuple:
        if q_st > q_end:
            raise ValueError("query must have st <= end")
        return (
            min(max(int(q_st), 0), self._domain_top),
            min(max(int(q_end), 0), self._domain_top),
        )

    def query(self, q_st: int, q_end: int, *, top_down: bool = False) -> np.ndarray:
        """Ids of all intervals G-overlapping ``[q_st, q_end]``.

        The result order is an implementation detail; no id appears
        twice.  Queries are clipped into the index domain.

        ``top_down=True`` runs the conventional top-down traversal the
        paper's Section 2 contrasts against: without the bottom-up
        ``compfirst``/``complast`` pruning, endpoint comparisons are
        performed at the first and last relevant partition of *every*
        level instead of an expected four partitions overall.  Results
        are identical; the flag exists to measure the optimization
        (``bench_ablation_topdown``).
        """
        q_st, q_end = self._clip(q_st, q_end)
        pieces: List[np.ndarray] = []
        self._run_single(q_st, q_end, pieces.append, None, top_down)
        if not pieces:
            return _EMPTY
        return np.concatenate(pieces)

    def query_count(self, q_st: int, q_end: int, *, top_down: bool = False) -> int:
        """Number of intervals G-overlapping ``[q_st, q_end]``.

        Cheaper than :meth:`query`: comparison-free partitions contribute
        plain row-range lengths without touching the id arrays.
        """
        q_st, q_end = self._clip(q_st, q_end)
        total = 0

        def on_count(n: int) -> None:
            nonlocal total
            total += n

        self._run_single(q_st, q_end, None, on_count, top_down)
        return total

    def _run_single(self, q_st, q_end, emit_ids, emit_count, top_down=False) -> None:
        """Level traversal shared by :meth:`query` and :meth:`query_count`.

        Exactly one of *emit_ids* (receives id arrays) and *emit_count*
        (receives integers) is set.  Bottom-up order enables the
        ``compfirst``/``complast`` flags; top-down keeps both flags set
        at every level (the pre-optimization behaviour).
        """
        count_only = emit_ids is None

        def emit_range(table: SubdivisionTable, lo: int, hi: int) -> None:
            if hi <= lo:
                return
            if count_only:
                emit_count(hi - lo)
            else:
                emit_ids(table.ids[lo:hi])

        compfirst = True
        complast = True
        level_order = (
            range(0, self.m + 1) if top_down else range(self.m, -1, -1)
        )
        for level in level_order:
            shift = self.m - level
            f = q_st >> shift
            l = q_end >> shift
            data = self.levels[level]
            o_in, o_aft, r_in, r_aft = data.tables()

            # --- first relevant partition ---------------------------------
            # When compfirst is cleared, the q.st <= s.end side is
            # guaranteed; the s.st <= q.end side only matters when the
            # first partition is also the last (f == l) and complast is
            # still set.  Otherwise everything in the partition is a
            # result (Algorithm 1, Line 17).
            if f == l and compfirst and complast:
                self._emit_o_in_both(o_in, f, q_st, q_end, emit_ids, emit_count)
                self._emit_st_leq(o_aft, f, q_end, emit_range)
                self._emit_end_geq(r_in, f, q_st, emit_range)
                emit_range(r_aft, *r_aft.bounds(f))
            elif compfirst:
                # Only the q.st <= s.end side needs testing (either
                # f < l, or complast is already cleared).
                self._emit_end_geq_unsorted_o_in(
                    o_in, f, q_st, emit_ids, emit_count
                )
                emit_range(o_aft, *o_aft.bounds(f))
                self._emit_end_geq(r_in, f, q_st, emit_range)
                emit_range(r_aft, *r_aft.bounds(f))
            elif f == l and complast:
                self._emit_st_leq(o_in, f, q_end, emit_range)
                self._emit_st_leq(o_aft, f, q_end, emit_range)
                emit_range(r_in, *r_in.bounds(f))
                emit_range(r_aft, *r_aft.bounds(f))
            else:
                emit_range(o_in, *o_in.bounds(f))
                emit_range(o_aft, *o_aft.bounds(f))
                emit_range(r_in, *r_in.bounds(f))
                emit_range(r_aft, *r_aft.bounds(f))

            if l > f:
                # --- in-between partitions: one contiguous slice ----------
                if l > f + 1:
                    emit_range(o_in, int(o_in.offsets[f + 1]), int(o_in.offsets[l]))
                    emit_range(o_aft, int(o_aft.offsets[f + 1]), int(o_aft.offsets[l]))
                # --- last relevant partition (originals only) -------------
                if complast:
                    self._emit_st_leq(o_in, l, q_end, emit_range)
                    self._emit_st_leq(o_aft, l, q_end, emit_range)
                else:
                    emit_range(o_in, *o_in.bounds(l))
                    emit_range(o_aft, *o_aft.bounds(l))

            # --- flag updates (Lines 22-25 of Algorithm 1) ----------------
            # Only sound bottom-up: the guarantee derives from child
            # levels already processed.
            if not top_down:
                if f % 2 == 0:
                    compfirst = False
                if l % 2 == 1:
                    complast = False

    # ------------------------------------------------------------------ #
    # per-partition comparison primitives
    # ------------------------------------------------------------------ #

    @staticmethod
    def _emit_st_leq(table: SubdivisionTable, part: int, q_end: int, emit_range):
        """Rows of *part* with ``s.st <= q_end`` (table sorted by st)."""
        lo, hi = table.bounds(part)
        if hi <= lo:
            return
        k = int(np.searchsorted(table.st[lo:hi], q_end, side="right"))
        emit_range(table, lo, lo + k)

    @staticmethod
    def _emit_end_geq(table: SubdivisionTable, part: int, q_st: int, emit_range):
        """Rows of *part* with ``s.end >= q_st`` (table sorted by end)."""
        lo, hi = table.bounds(part)
        if hi <= lo:
            return
        k = int(np.searchsorted(table.end[lo:hi], q_st, side="left"))
        emit_range(table, lo + k, hi)

    @staticmethod
    def _emit_end_geq_unsorted_o_in(table, part, q_st, emit_ids, emit_count):
        """``s.end >= q_st`` on O_in, which is sorted by st, not end."""
        lo, hi = table.bounds(part)
        if hi <= lo:
            return
        mask = table.end[lo:hi] >= q_st
        if emit_ids is None:
            emit_count(int(np.count_nonzero(mask)))
        else:
            emit_ids(table.ids[lo:hi][mask])

    @staticmethod
    def _emit_o_in_both(table, part, q_st, q_end, emit_ids, emit_count):
        """Both overlap tests on O_in (first == last partition case)."""
        lo, hi = table.bounds(part)
        if hi <= lo:
            return
        k = int(np.searchsorted(table.st[lo:hi], q_end, side="right"))
        if k == 0:
            return
        mask = table.end[lo : lo + k] >= q_st
        if emit_ids is None:
            emit_count(int(np.count_nonzero(mask)))
        else:
            emit_ids(table.ids[lo : lo + k][mask])
