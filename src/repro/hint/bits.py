"""Bit arithmetic of the HINT hierarchy.

HINT with parameter ``m`` has ``m + 1`` levels over the discrete domain
``[0, 2**m - 1]``.  Level ``l`` (``0 <= l <= m``) divides the domain into
``2**l`` uniform partitions; partition ``P_{l,i}`` covers the values
whose ``l``-bit prefix equals ``i``.  Everything the index and the batch
strategies need — first/last relevant partition of a query, partition
extents — is plain shifting on the binary representation of the
endpoints, which is why these helpers are shared by every module in the
repository.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "level_prefix",
    "level_shift",
    "num_partitions",
    "partition_extent",
    "partition_range",
    "relevant_partitions",
    "validate_domain",
]


def level_shift(m: int, level: int) -> int:
    """Number of low bits dropped to obtain a level-``level`` prefix."""
    if not 0 <= level <= m:
        raise ValueError(f"level must be in [0, {m}], got {level}")
    return m - level


def level_prefix(m: int, level: int, value):
    """``prefix(level, value)`` of the paper: the level-``level`` partition
    index containing *value*.

    Works on scalars and numpy arrays alike.
    """
    shift = level_shift(m, level)
    if isinstance(value, np.ndarray):
        return value >> shift
    return int(value) >> shift


def num_partitions(level: int) -> int:
    """Number of partitions at *level* (``2**level``)."""
    if level < 0:
        raise ValueError("level must be non-negative")
    return 1 << level


def partition_extent(m: int, level: int) -> int:
    """Number of domain values covered by one partition at *level*."""
    return 1 << level_shift(m, level)


def partition_range(m: int, level: int, index: int) -> Tuple[int, int]:
    """Closed domain range ``[lo, hi]`` covered by ``P_{level, index}``."""
    if not 0 <= index < num_partitions(level):
        raise ValueError(
            f"partition index {index} out of range for level {level}"
        )
    extent = partition_extent(m, level)
    lo = index * extent
    return lo, lo + extent - 1


def relevant_partitions(m: int, level: int, q_st: int, q_end: int) -> Tuple[int, int]:
    """First and last partition of level *level* overlapping ``[q_st, q_end]``.

    These are the ``f`` and ``l`` of Algorithm 1 — the prefixes of the
    query endpoints.
    """
    if q_st > q_end:
        raise ValueError("query must have st <= end")
    shift = level_shift(m, level)
    return q_st >> shift, q_end >> shift


def validate_domain(m: int, st, end) -> None:
    """Check that all values of ``st``/``end`` lie inside ``[0, 2**m - 1]``.

    Raises
    ------
    ValueError
        If *m* is negative, or any endpoint falls outside the domain.
    """
    if m < 0:
        raise ValueError("m must be non-negative")
    top = (1 << m) - 1
    st = np.asarray(st)
    end = np.asarray(end)
    if st.size and (int(st.min()) < 0 or int(end.max()) > top):
        raise ValueError(
            f"endpoints must lie inside [0, {top}] for m={m}; "
            f"got range [{int(st.min())}, {int(end.max())}]"
        )
