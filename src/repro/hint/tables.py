"""Columnar per-level storage of HINT.

Each level ``l`` keeps one :class:`SubdivisionTable` per subdivision
class.  A table flattens the contents of all ``2**l`` partitions of its
class into partition-ordered parallel arrays plus an ``offsets`` array of
length ``2**l + 1`` — partition ``i`` owns rows
``offsets[i]:offsets[i+1]``.

This layout implements two of the paper's optimizations at once:

* **skewness & sparsity** — empty partitions cost one repeated offset,
  nothing more, and the merged per-level table is exactly the ``T_l``
  table with its auxiliary index described in Section 2;
* **cache misses** — ids and endpoints live in separate arrays, so
  comparison-free partitions are answered from the id array alone.

It also enables the *contiguous middle* trick used by the production
query code: the originals of all in-between partitions ``f+1 .. l-1`` of
a query occupy one contiguous row range.

Beneficial sort orders (the *sorting* optimization):

====== ============== =================================================
class  sorted by      reason
====== ============== =================================================
O_in   ``st``         ``s.st <= q.end`` becomes a ``searchsorted`` prefix
O_aft  ``st``         same test; the other test is implied
R_in   ``end``        ``q.st <= s.end`` becomes a ``searchsorted`` suffix
R_aft  (unsorted)     never compared, ids only
====== ============== =================================================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hint.assignment import (
    CLASS_NAMES,
    CLASS_O_AFT,
    CLASS_O_IN,
    CLASS_R_AFT,
    CLASS_R_IN,
)

__all__ = ["SubdivisionTable", "LevelData", "build_level_data"]

_EMPTY = np.empty(0, dtype=np.int64)

# One process-wide lock for lazy auxiliary-array builds.  Coarse on
# purpose: each table builds its prefix exactly once, so contention is a
# few microseconds per table over the whole process lifetime, and a
# shared lock keeps SubdivisionTable a plain picklable dataclass (a
# per-instance Lock field would not survive pickling).
_AUX_LOCK = threading.Lock()


@dataclass
class SubdivisionTable:
    """Flattened, partition-ordered contents of one subdivision class.

    ``comp`` packs each row's ``(partition, sort_key)`` into a single
    int64 (``partition << key_bits | key``).  Because rows are ordered
    by partition and then by the key, ``comp`` is globally sorted — a
    whole batch of per-partition prefix/suffix probes collapses into
    *one* vectorized ``searchsorted`` against it.  This is the columnar
    expression of the partition-based strategy's computation sharing.
    """

    offsets: np.ndarray  # int64[num_partitions + 1]
    ids: np.ndarray  # int64[n]
    st: Optional[np.ndarray]  # int64[n] or None (storage optimization)
    end: Optional[np.ndarray]  # int64[n] or None
    comp: Optional[np.ndarray] = None  # int64[n], None for unsorted class
    key_bits: int = 0
    _xor_prefix: Optional[np.ndarray] = None  # lazy, see xor_prefix

    @property
    def xor_prefix(self) -> np.ndarray:
        """Prefix-XOR over ``ids`` (length ``n + 1``), built lazily.

        ``xor_prefix[hi] ^ xor_prefix[lo]`` is the XOR of
        ``ids[lo:hi]`` — it turns any row-range checksum into O(1),
        which keeps the checksum result mode as cheap as count mode for
        every comparison-free range.

        Thread-safe via double-checked locking: concurrent first reads
        (e.g. two pool workers hitting the same table in a checksum
        flush) build the array exactly once and every caller observes
        the same fully initialized object.  Callers that know they will
        need it (index build, arena attach) should call
        :meth:`precompute_aux` up front instead of racing here.
        """
        xp = self._xor_prefix
        if xp is None:
            with _AUX_LOCK:
                xp = self._xor_prefix
                if xp is None:
                    xp = np.zeros(self.ids.size + 1, dtype=np.int64)
                    if self.ids.size:
                        np.bitwise_xor.accumulate(self.ids, out=xp[1:])
                    self._xor_prefix = xp
        return xp

    def precompute_aux(self) -> None:
        """Eagerly build the lazy auxiliary arrays (:attr:`xor_prefix`).

        Hook for build/attach paths that know checksum-mode traffic is
        coming — pre-building under the shared lock means no query
        thread ever pays the construction cost (or contends for the
        build) on the hot path.  Idempotent and thread-safe.
        """
        self.xor_prefix  # noqa: B018 — double-checked lazy build

    @classmethod
    def empty(cls, num_partitions: int, key_bits: int = 0) -> "SubdivisionTable":
        return cls(
            offsets=np.zeros(num_partitions + 1, dtype=np.int64),
            ids=_EMPTY,
            st=None,
            end=None,
            comp=_EMPTY if key_bits else None,
            key_bits=key_bits,
        )

    def __len__(self) -> int:
        return int(self.ids.size)

    @property
    def num_partitions(self) -> int:
        return int(self.offsets.size - 1)

    def bounds(self, partition: int) -> Tuple[int, int]:
        """Row range ``[lo, hi)`` of *partition*."""
        return int(self.offsets[partition]), int(self.offsets[partition + 1])

    def count(self, partition: int) -> int:
        """Number of intervals stored in *partition*."""
        return int(self.offsets[partition + 1] - self.offsets[partition])

    def partition_ids(self, partition: int) -> np.ndarray:
        """Ids stored in *partition* (a view, not a copy)."""
        lo, hi = self.bounds(partition)
        return self.ids[lo:hi]

    def nbytes(self) -> int:
        """Approximate memory footprint in bytes."""
        total = self.offsets.nbytes + self.ids.nbytes
        if self.st is not None:
            total += self.st.nbytes
        if self.end is not None:
            total += self.end.nbytes
        return total


@dataclass
class LevelData:
    """The four subdivision tables of one index level."""

    level: int
    o_in: SubdivisionTable
    o_aft: SubdivisionTable
    r_in: SubdivisionTable
    r_aft: SubdivisionTable

    def table(self, cls: int) -> SubdivisionTable:
        return (self.o_in, self.o_aft, self.r_in, self.r_aft)[cls]

    def tables(self) -> Tuple[SubdivisionTable, ...]:
        return (self.o_in, self.o_aft, self.r_in, self.r_aft)

    def total(self) -> int:
        return sum(len(t) for t in self.tables())

    def nbytes(self) -> int:
        return sum(t.nbytes() for t in self.tables())

    def precompute_aux(self) -> None:
        """Eagerly build every table's auxiliary arrays."""
        for table in self.tables():
            table.precompute_aux()

    def describe(self) -> Dict[str, int]:
        return {name: len(t) for name, t in zip(CLASS_NAMES, self.tables())}


# Sort key per class: which endpoint orders the rows inside a partition.
_SORT_KEY = {CLASS_O_IN: "st", CLASS_O_AFT: "st", CLASS_R_IN: "end", CLASS_R_AFT: None}

# Columns retained per class under the storage optimization.
_KEEP_ST = {CLASS_O_IN: True, CLASS_O_AFT: True, CLASS_R_IN: False, CLASS_R_AFT: False}
_KEEP_END = {CLASS_O_IN: True, CLASS_O_AFT: False, CLASS_R_IN: True, CLASS_R_AFT: False}


def _build_table(
    num_partitions: int,
    parts: np.ndarray,
    ids: np.ndarray,
    st: np.ndarray,
    end: np.ndarray,
    cls: int,
    storage_optimized: bool,
    key_bits: int,
) -> SubdivisionTable:
    key_name = _SORT_KEY[cls]
    if parts.size == 0:
        return SubdivisionTable.empty(
            num_partitions, key_bits if key_name else 0
        )
    if key_name == "st":
        key = st
        order = np.lexsort((st, parts))
    elif key_name == "end":
        key = end
        order = np.lexsort((end, parts))
    else:
        key = None
        order = np.argsort(parts, kind="stable")
    parts = parts[order]
    counts = np.bincount(parts, minlength=num_partitions)
    offsets = np.zeros(num_partitions + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    keep_st = not storage_optimized or _KEEP_ST[cls]
    keep_end = not storage_optimized or _KEEP_END[cls]
    comp = None
    if key is not None:
        comp = (parts << key_bits) | key[order]
    return SubdivisionTable(
        offsets=offsets,
        ids=np.ascontiguousarray(ids[order]),
        st=np.ascontiguousarray(st[order]) if keep_st else None,
        end=np.ascontiguousarray(end[order]) if keep_end else None,
        comp=comp,
        key_bits=key_bits if key is not None else 0,
    )


def build_level_data(
    level: int,
    rows: np.ndarray,
    parts: np.ndarray,
    classes: np.ndarray,
    ids: np.ndarray,
    st: np.ndarray,
    end: np.ndarray,
    *,
    storage_optimized: bool = True,
    key_bits: int = 32,
) -> LevelData:
    """Materialize the four subdivision tables of one level.

    Parameters
    ----------
    level:
        Index level (defines the number of partitions ``2**level``).
    rows, parts, classes:
        Parallel placement arrays for this level as produced by
        :func:`repro.hint.assignment.assign_collection`.
    ids, st, end:
        The full collection columns; ``rows`` indexes into them.
    storage_optimized:
        Drop endpoint columns that the query algorithms never read
        (the paper's *storage* optimization).
    key_bits:
        Bits reserved for the sort key in the packed ``comp`` column;
        must cover the bit width of any endpoint (``m`` suffices for an
        index over ``[0, 2**m - 1]``) while keeping
        ``level + key_bits < 64``.
    """
    num_partitions = 1 << level
    tables: List[SubdivisionTable] = []
    for cls in (CLASS_O_IN, CLASS_O_AFT, CLASS_R_IN, CLASS_R_AFT):
        mask = classes == cls
        sel = rows[mask]
        tables.append(
            _build_table(
                num_partitions,
                parts[mask],
                ids[sel],
                st[sel],
                end[sel],
                cls,
                storage_optimized,
                key_bits,
            )
        )
    return LevelData(level, *tables)
