"""A dynamic wrapper over the static HINT index.

The paper's motivation is OLTP-style systems under query-heavy load;
those systems also *ingest*.  HINT itself is bulk-built and static, so
this wrapper follows the standard staging design for static main-memory
indexes:

* **inserts** land in a columnar staging buffer, scanned linearly at
  query time (it stays small) and merged into a rebuilt index once it
  exceeds ``rebuild_threshold`` — amortized O(n/k) rebuilds;
* **deletes** go into a tombstone id set, filtered out of every result
  and physically dropped at the next rebuild.

Queries therefore always see the current state:
``(index results ∪ buffer results) − tombstones``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.hint.index import HintIndex
from repro.intervals.collection import IntervalCollection
from repro.intervals.relations import g_overlaps

__all__ = ["DynamicHint"]

_EMPTY = np.empty(0, dtype=np.int64)


class DynamicHint:
    """Insert/delete support on top of :class:`~repro.hint.index.HintIndex`.

    Parameters
    ----------
    collection:
        Initial contents (may be empty).
    m:
        HINT parameter; fixed for the lifetime of the wrapper, so all
        inserted intervals must fit ``[0, 2**m - 1]``.
    rebuild_threshold:
        Staging-buffer size that triggers a merge-and-rebuild.
    """

    def __init__(
        self,
        collection: Optional[IntervalCollection] = None,
        m: int = 16,
        *,
        rebuild_threshold: int = 4096,
    ):
        if rebuild_threshold < 1:
            raise ValueError("rebuild_threshold must be positive")
        if collection is None:
            collection = IntervalCollection.empty()
        self.m = int(m)
        self.rebuild_threshold = int(rebuild_threshold)
        self._base = collection
        self._index = HintIndex(collection, m=m)
        self._buf_ids: List[int] = []
        self._buf_st: List[int] = []
        self._buf_end: List[int] = []
        self._tombstones: set = set()
        self._next_id = int(collection.ids.max()) + 1 if len(collection) else 0
        self.rebuilds = 0

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._base) + len(self._buf_ids) - len(self._tombstones)

    @property
    def buffered(self) -> int:
        """Number of staged (not yet merged) inserts."""
        return len(self._buf_ids)

    def insert(self, st: int, end: int, id: Optional[int] = None) -> int:
        """Insert ``[st, end]``; returns the assigned (or given) id.

        Ids identify live objects: passing an id that is currently live
        produces duplicate results, and re-using a *deleted* id is only
        safe after :meth:`compact` has physically dropped it (tombstones
        suppress an id everywhere, including fresh inserts).  Omit the
        id to always get a fresh one.
        """
        if st > end:
            raise ValueError("interval must have st <= end")
        top = (1 << self.m) - 1
        if st < 0 or end > top:
            raise ValueError(f"interval must lie inside [0, {top}]")
        if id is None:
            id = self._next_id
        self._next_id = max(self._next_id, int(id) + 1)
        self._buf_ids.append(int(id))
        self._buf_st.append(int(st))
        self._buf_end.append(int(end))
        if len(self._buf_ids) >= self.rebuild_threshold:
            self._rebuild()
        return int(id)

    def delete(self, id: int) -> None:
        """Mark object *id* deleted (dropped physically at next rebuild)."""
        self._tombstones.add(int(id))

    def _rebuild(self) -> None:
        merged_ids = np.concatenate(
            [self._base.ids, np.asarray(self._buf_ids, dtype=np.int64)]
        )
        merged_st = np.concatenate(
            [self._base.st, np.asarray(self._buf_st, dtype=np.int64)]
        )
        merged_end = np.concatenate(
            [self._base.end, np.asarray(self._buf_end, dtype=np.int64)]
        )
        if self._tombstones:
            dead = np.fromiter(
                self._tombstones, dtype=np.int64, count=len(self._tombstones)
            )
            keep = ~np.isin(merged_ids, dead)
            merged_ids = merged_ids[keep]
            merged_st = merged_st[keep]
            merged_end = merged_end[keep]
            self._tombstones.clear()
        self._base = IntervalCollection(
            merged_st, merged_end, merged_ids, copy=False
        )
        self._index = HintIndex(self._base, m=self.m)
        self._buf_ids.clear()
        self._buf_st.clear()
        self._buf_end.clear()
        self.rebuilds += 1

    def compact(self) -> None:
        """Force a merge-and-rebuild now."""
        self._rebuild()

    # ------------------------------------------------------------------ #

    def query(self, q_st: int, q_end: int) -> np.ndarray:
        """Ids G-overlapping ``[q_st, q_end]`` in the current state."""
        parts = [self._index.query(q_st, q_end)]
        if self._buf_ids:
            st = np.asarray(self._buf_st, dtype=np.int64)
            end = np.asarray(self._buf_end, dtype=np.int64)
            mask = g_overlaps(st, end, q_st, q_end)
            parts.append(np.asarray(self._buf_ids, dtype=np.int64)[mask])
        ids = np.concatenate(parts) if len(parts) > 1 else parts[0]
        if self._tombstones and ids.size:
            dead = np.fromiter(
                self._tombstones, dtype=np.int64, count=len(self._tombstones)
            )
            ids = ids[~np.isin(ids, dead)]
        return ids

    def query_count(self, q_st: int, q_end: int) -> int:
        """Number of current intervals G-overlapping the query."""
        return int(self.query(q_st, q_end).size)

    def snapshot(self) -> IntervalCollection:
        """The current contents as an immutable collection (compacts)."""
        if self._buf_ids or self._tombstones:
            self._rebuild()
        return self._base

    @property
    def index(self) -> HintIndex:
        """The underlying static index (valid until the next rebuild)."""
        return self._index
