"""A dynamic wrapper over the static HINT index.

The paper's motivation is OLTP-style systems under query-heavy load;
those systems also *ingest*.  HINT itself is bulk-built and static, so
this wrapper follows the standard staging design for static main-memory
indexes:

* **inserts** land in a columnar staging buffer, scanned linearly at
  query time (it stays small) and merged into a rebuilt index once it
  exceeds ``rebuild_threshold`` — amortized O(n/k) rebuilds;
* **deletes** go into a tombstone id set, filtered out of every result
  and physically dropped at the next rebuild.

Queries therefore always see the current state:
``(index results ∪ buffer results) − tombstones``.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

import repro.obs as obs
from repro.hint.index import HintIndex
from repro.intervals.collection import IntervalCollection
from repro.intervals.relations import g_overlaps
from repro.verify.faults import SITE_REBUILD, FaultPlan

__all__ = ["DynamicHint"]

_EMPTY = np.empty(0, dtype=np.int64)


class DynamicHint:
    """Insert/delete support on top of :class:`~repro.hint.index.HintIndex`.

    Parameters
    ----------
    collection:
        Initial contents (may be empty).
    m:
        HINT parameter; fixed for the lifetime of the wrapper, so all
        inserted intervals must fit ``[0, 2**m - 1]``.
    rebuild_threshold:
        Staging-buffer size that triggers a merge-and-rebuild.
    debug_checks:
        Run the structural invariant validators
        (:func:`repro.verify.invariants.verify_index`) after every
        rebuild — roughly doubles rebuild cost, intended for tests.
    fault_plan:
        Optional :class:`repro.verify.faults.FaultPlan`; the rebuild
        fires the :data:`~repro.verify.faults.SITE_REBUILD` injection
        site before any state is touched.
    """

    def __init__(
        self,
        collection: Optional[IntervalCollection] = None,
        m: int = 16,
        *,
        rebuild_threshold: int = 4096,
        debug_checks: bool = False,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if rebuild_threshold < 1:
            raise ValueError("rebuild_threshold must be positive")
        if collection is None:
            collection = IntervalCollection.empty()
        self.m = int(m)
        self.rebuild_threshold = int(rebuild_threshold)
        self.debug_checks = bool(debug_checks)
        self._fault_plan = fault_plan
        self._base = collection
        self._index = HintIndex(collection, m=m, debug_checks=debug_checks)
        self._buf_ids: List[int] = []
        self._buf_st: List[int] = []
        self._buf_end: List[int] = []
        self._tombstones: set = set()
        self._live: set = set(collection.ids.tolist())
        self._next_id = int(collection.ids.max()) + 1 if len(collection) else 0
        self.rebuilds = 0
        # Content-version bookkeeping for caches (see cache_version):
        # every content mutation bumps the version and logs the mutated
        # interval; rebuilds do NOT (they change layout, not answers).
        self._cache_version = 0
        self._mutations: deque = deque(maxlen=1024)

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._live)

    @property
    def buffered(self) -> int:
        """Number of staged (not yet merged) inserts."""
        return len(self._buf_ids)

    def insert(self, st: int, end: int, id: Optional[int] = None) -> int:
        """Insert ``[st, end]``; returns the assigned (or given) id.

        Ids identify live objects.  Passing an id that is currently live
        raises (it would produce duplicate results), and re-using a
        *deleted* id before :meth:`compact` raises too — the tombstone
        would silently suppress the fresh insert from every query.  Omit
        the id to always get a fresh one.

        If the insert trips the rebuild threshold and the rebuild fails
        (out of memory, an injected fault), the interval is already
        staged and survives: the exception propagates, no state is torn
        down, and the next insert or :meth:`compact` retries the merge.
        """
        if st > end:
            raise ValueError("interval must have st <= end")
        top = (1 << self.m) - 1
        if st < 0 or end > top:
            raise ValueError(f"interval must lie inside [0, {top}]")
        if id is None:
            id = self._next_id
        id = int(id)
        if id in self._live:
            raise ValueError(f"id {id} is already live")
        if id in self._tombstones:
            raise ValueError(
                f"id {id} is tombstoned; compact() before re-using it"
            )
        self._next_id = max(self._next_id, id + 1)
        self._buf_ids.append(id)
        self._buf_st.append(int(st))
        self._buf_end.append(int(end))
        self._live.add(id)
        self._record_mutation(int(st), int(end))
        if len(self._buf_ids) >= self.rebuild_threshold:
            self._rebuild()
        return id

    def delete(self, id: int) -> None:
        """Mark object *id* deleted (dropped physically at next rebuild).

        Works equally for ids already merged into the index and ids
        still in the staging buffer.  Raises :class:`KeyError` when *id*
        is not live (never inserted, or already deleted) — silently
        accepting it would corrupt :func:`len` and resurrect nothing.
        """
        id = int(id)
        if id not in self._live:
            raise KeyError(f"id {id} is not live")
        span = self._coords_of(id)
        self._live.discard(id)
        self._tombstones.add(id)
        if span is not None:
            self._record_mutation(span[0], span[1])
        else:  # untrackable: force full invalidation downstream
            self._record_mutation(None, None)

    # ------------------------------------------------------------------ #
    # cache-invalidation bookkeeping
    # ------------------------------------------------------------------ #

    def _coords_of(self, id: int) -> Optional[Tuple[int, int]]:
        """``(st, end)`` of a live object, buffer or base; None if lost."""
        try:
            pos = self._buf_ids.index(id)
            return (self._buf_st[pos], self._buf_end[pos])
        except ValueError:
            pass
        hits = np.flatnonzero(self._base.ids == id)
        if hits.size:
            pos = int(hits[0])
            return (int(self._base.st[pos]), int(self._base.end[pos]))
        return None

    def _record_mutation(self, lo: Optional[int], hi: Optional[int]) -> None:
        self._cache_version += 1
        self._mutations.append((self._cache_version, lo, hi))

    @property
    def cache_version(self) -> int:
        """Monotonic content version; bumps on insert/delete, not rebuild.

        Caches compare this against the version they last observed and
        call :meth:`dirty_since` to learn what changed.  Rebuilds leave
        it untouched on purpose: a merge-and-rebuild changes the
        physical layout but not a single query answer.
        """
        return self._cache_version

    def dirty_since(self, version: int) -> Optional[List[Tuple[int, int]]]:
        """Mutated ``(lo, hi)`` intervals since *version*, or ``None``.

        ``None`` means the history is unavailable — the requested
        version predates the bounded mutation log, or a mutation could
        not be attributed to an interval — and the caller must treat
        *everything* as dirty (full flush).  An empty list means nothing
        changed.
        """
        version = int(version)
        if version > self._cache_version:
            raise ValueError(
                f"version {version} is ahead of cache_version "
                f"{self._cache_version}"
            )
        if version == self._cache_version:
            return []
        if not self._mutations or self._mutations[0][0] > version + 1:
            return None  # log truncated: can't prove what changed
        regions: List[Tuple[int, int]] = []
        for ver, lo, hi in self._mutations:
            if ver <= version:
                continue
            if lo is None:
                return None
            regions.append((lo, hi))
        return regions

    def _rebuild(self) -> None:
        """Merge buffer + base, drop tombstones, rebuild the index.

        The rebuild is atomic: all new state is computed first and
        committed together, so a failure (e.g. an injected
        :data:`~repro.verify.faults.SITE_REBUILD` fault) leaves the
        wrapper exactly as it was.
        """
        ob = obs.active()
        if ob is None:
            return self._rebuild_inner()
        with ob.span(
            "dynamic.rebuild",
            buffered=len(self._buf_ids),
            tombstones=len(self._tombstones),
        ) as sp:
            t0 = perf_counter()
            self._rebuild_inner()
            duration = perf_counter() - t0
            sp.attrs["size"] = len(self._live)
            reg = ob.registry
            reg.counter(
                "repro_dynamic_rebuilds_total",
                help="Merge-and-rebuild passes of DynamicHint.",
            ).inc()
            reg.histogram(
                "repro_dynamic_rebuild_seconds",
                help="DynamicHint rebuild duration.",
            ).observe(duration)
            reg.gauge(
                "repro_dynamic_live",
                help="Live intervals in DynamicHint after the last rebuild.",
            ).set(len(self._live))

    def _rebuild_inner(self) -> None:
        if self._fault_plan is not None:
            self._fault_plan.fire(SITE_REBUILD)
        merged_ids = np.concatenate(
            [self._base.ids, np.asarray(self._buf_ids, dtype=np.int64)]
        )
        merged_st = np.concatenate(
            [self._base.st, np.asarray(self._buf_st, dtype=np.int64)]
        )
        merged_end = np.concatenate(
            [self._base.end, np.asarray(self._buf_end, dtype=np.int64)]
        )
        if self._tombstones:
            dead = np.fromiter(
                self._tombstones, dtype=np.int64, count=len(self._tombstones)
            )
            keep = ~np.isin(merged_ids, dead)
            merged_ids = merged_ids[keep]
            merged_st = merged_st[keep]
            merged_end = merged_end[keep]
        base = IntervalCollection(merged_st, merged_end, merged_ids, copy=False)
        index = HintIndex(base, m=self.m, debug_checks=self.debug_checks)
        # ---- commit point: nothing above mutated self ----
        self._base = base
        self._index = index
        self._tombstones.clear()
        self._buf_ids.clear()
        self._buf_st.clear()
        self._buf_end.clear()
        self.rebuilds += 1
        if self.debug_checks:
            from repro.verify.invariants import verify_index

            verify_index(self)

    def compact(self) -> None:
        """Force a merge-and-rebuild now."""
        self._rebuild()

    # ------------------------------------------------------------------ #

    def query(self, q_st: int, q_end: int) -> np.ndarray:
        """Ids G-overlapping ``[q_st, q_end]`` in the current state."""
        parts = [self._index.query(q_st, q_end)]
        if self._buf_ids:
            st = np.asarray(self._buf_st, dtype=np.int64)
            end = np.asarray(self._buf_end, dtype=np.int64)
            mask = g_overlaps(st, end, q_st, q_end)
            parts.append(np.asarray(self._buf_ids, dtype=np.int64)[mask])
        ids = np.concatenate(parts) if len(parts) > 1 else parts[0]
        if self._tombstones and ids.size:
            dead = np.fromiter(
                self._tombstones, dtype=np.int64, count=len(self._tombstones)
            )
            ids = ids[~np.isin(ids, dead)]
        return ids

    def query_count(self, q_st: int, q_end: int) -> int:
        """Number of current intervals G-overlapping the query."""
        return int(self.query(q_st, q_end).size)

    def snapshot(self) -> IntervalCollection:
        """The current contents as an immutable collection (compacts)."""
        if self._buf_ids or self._tombstones:
            self._rebuild()
        return self._base

    @property
    def index(self) -> HintIndex:
        """The underlying static index (valid until the next rebuild)."""
        return self._index
