"""HINT — the Hierarchical index for INTervals (SIGMOD'22 / VLDB J. 2023).

The index is the substrate of the paper's batch-processing contribution.
Two complete implementations live here:

* :class:`~repro.hint.index.HintIndex` — the production, columnar
  (numpy struct-of-arrays) build.  Every level stores each of the four
  subdivision classes (``O_in``, ``O_aft``, ``R_in``, ``R_aft``) as one
  flattened, partition-ordered table plus an offsets array; this *is* the
  paper's skewness & sparsity optimization, and per-partition operations
  reduce to ``searchsorted`` calls and vectorized masks.
* :class:`~repro.hint.reference.ReferenceHint` — a deliberately simple
  pure-Python build that follows the paper's pseudocode line by line.  It
  is the executable specification used by the test-suite, and the only
  implementation wired to the access-pattern recorder that regenerates
  Table 1 and feeds the cache simulator.
"""

from repro.hint.bits import (
    level_prefix,
    partition_range,
    partition_extent,
    num_partitions,
    validate_domain,
)
from repro.hint.assignment import assign_interval, assign_collection, Assignment
from repro.hint.index import HintIndex
from repro.hint.model import choose_m
from repro.hint.reference import ReferenceHint
from repro.hint.allen import AllenSelection, ALLEN_RELATIONS
from repro.hint.dynamic import DynamicHint
from repro.hint.variants import HintVariant
from repro.hint.persist import save_index, load_index
from repro.hint.cost import (
    CostEstimate,
    choose_m_model,
    cost_profile,
    estimate_query_cost,
)

__all__ = [
    "save_index",
    "load_index",
    "CostEstimate",
    "choose_m_model",
    "cost_profile",
    "estimate_query_cost",
    "HintIndex",
    "ReferenceHint",
    "HintVariant",
    "AllenSelection",
    "ALLEN_RELATIONS",
    "DynamicHint",
    "assign_interval",
    "assign_collection",
    "Assignment",
    "level_prefix",
    "partition_range",
    "partition_extent",
    "num_partitions",
    "validate_domain",
    "choose_m",
]
