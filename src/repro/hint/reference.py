"""Pseudocode-faithful HINT and batch strategies (the executable spec).

This module mirrors the paper line by line, on an *unoptimized* HINT
(plain ``P_O`` / ``P_R`` classes per partition), exactly like Section 3
of the paper describes the strategies:

* :meth:`ReferenceHint.query` — Algorithm 1 (selection query, bottom-up,
  ``compfirst`` / ``complast`` flags);
* :meth:`ReferenceHint.batch_query_based` — Algorithm 2;
* :meth:`ReferenceHint.batch_level_based` — Algorithm 3;
* :meth:`ReferenceHint.batch_partition_based` — Algorithm 4.

Every partition visit can be recorded through an optional *recorder*
(any object with ``record(level, partition, query_position)``), which is
how the access patterns of Table 1 are regenerated and how the cache
simulator obtains its traces.  The implementation favours clarity over
speed — the production columnar index in :mod:`repro.hint.index` and the
strategies in :mod:`repro.core` are the fast path, and the test-suite
checks them against this one.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hint.bits import validate_domain
from repro.intervals.batch import QueryBatch
from repro.intervals.collection import IntervalCollection

__all__ = ["ReferenceHint"]

Record = Tuple[int, int, int]  # (id, st, end)


class ReferenceHint:
    """Unoptimized HINT: per-partition ``P_O`` / ``P_R`` lists."""

    def __init__(self, collection: IntervalCollection, m: int):
        if m < 0:
            raise ValueError("m must be non-negative")
        validate_domain(m, collection.st, collection.end)
        self.m = int(m)
        self.num_intervals = len(collection)
        self._domain_top = (1 << self.m) - 1
        # originals[level][partition] and replicas[level][partition]
        self.originals: List[Dict[int, List[Record]]] = [
            defaultdict(list) for _ in range(self.m + 1)
        ]
        self.replicas: List[Dict[int, List[Record]]] = [
            defaultdict(list) for _ in range(self.m + 1)
        ]
        for rec_id, st, end in collection:
            self._insert(rec_id, st, end)

    def _insert(self, rec_id: int, st: int, end: int) -> None:
        """Bottom-up assignment into the smallest covering partition set."""
        a, b = st, end
        level = self.m
        while level >= 0 and a <= b:
            shift = self.m - level
            if a & 1:
                self._place(level, a, rec_id, st, end, shift)
                a += 1
            if not (b & 1):
                self._place(level, b, rec_id, st, end, shift)
                b -= 1
            a >>= 1
            b >>= 1
            level -= 1

    def _place(self, level, partition, rec_id, st, end, shift) -> None:
        record = (rec_id, st, end)
        if st >> shift == partition:  # starts inside: original
            self.originals[level][partition].append(record)
        else:
            self.replicas[level][partition].append(record)

    # ------------------------------------------------------------------ #
    # Algorithm 1 — selection query
    # ------------------------------------------------------------------ #

    def query(
        self,
        q_st: int,
        q_end: int,
        *,
        recorder=None,
        query_position: int = 0,
    ) -> List[int]:
        """All ids G-overlapping ``[q_st, q_end]`` (Algorithm 1)."""
        q_st, q_end = self._clip(q_st, q_end)
        out: List[int] = []
        compfirst = True
        complast = True
        for level in range(self.m, -1, -1):
            f, l = self._prefixes(level, q_st, q_end)
            for i in range(f, l + 1):
                if recorder is not None:
                    recorder.record(level, i, query_position)
                self._process_partition(
                    level, i, f, l, q_st, q_end, compfirst, complast, out
                )
            if f % 2 == 0:
                compfirst = False
            if l % 2 == 1:
                complast = False
        return out

    def _prefixes(self, level: int, q_st: int, q_end: int) -> Tuple[int, int]:
        shift = self.m - level
        return q_st >> shift, q_end >> shift

    def _clip(self, q_st: int, q_end: int) -> Tuple[int, int]:
        if q_st > q_end:
            raise ValueError("query must have st <= end")
        clamp = lambda v: min(max(int(v), 0), self._domain_top)  # noqa: E731
        return clamp(q_st), clamp(q_end)

    def _process_partition(
        self, level, i, f, l, q_st, q_end, compfirst, complast, out
    ) -> None:
        """Lines 7-21 of Algorithm 1 for one relevant partition."""
        orig = self.originals[level].get(i, ())
        repl = self.replicas[level].get(i, ())
        if i == f:
            if i == l and compfirst and complast:
                out.extend(
                    r[0] for r in orig if q_st <= r[2] and r[1] <= q_end
                )
                out.extend(r[0] for r in repl if q_st <= r[2])
            elif i == l and complast:  # compfirst cleared
                out.extend(r[0] for r in orig if r[1] <= q_end)
                out.extend(r[0] for r in repl)
            elif compfirst:
                out.extend(r[0] for r in orig if q_st <= r[2])
                out.extend(r[0] for r in repl if q_st <= r[2])
            else:
                out.extend(r[0] for r in orig)
                out.extend(r[0] for r in repl)
        elif i == l and complast:  # l > f
            out.extend(r[0] for r in orig if r[1] <= q_end)
        else:  # in-between, or last with complast cleared
            out.extend(r[0] for r in orig)

    # ------------------------------------------------------------------ #
    # Algorithm 2 — query-based strategy
    # ------------------------------------------------------------------ #

    def batch_query_based(
        self,
        batch: QueryBatch,
        *,
        sort: bool = False,
        recorder=None,
    ) -> List[List[int]]:
        """Execute the batch serially, optionally sorted by query start.

        Returns per-query result lists *in the caller's original batch
        order* regardless of sorting.
        """
        work = batch.sorted_by_start() if sort else batch
        results: List[Optional[List[int]]] = [None] * len(batch)
        for pos, (q_st, q_end) in enumerate(work):
            results[int(work.order[pos])] = self.query(
                q_st, q_end, recorder=recorder, query_position=pos
            )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Algorithm 3 — level-based strategy
    # ------------------------------------------------------------------ #

    def batch_level_based(
        self,
        batch: QueryBatch,
        *,
        sort: bool = True,
        recorder=None,
    ) -> List[List[int]]:
        """Evaluate all queries per level before moving to the next level."""
        work = batch.sorted_by_start() if sort else batch
        n = len(work)
        compfirst = [True] * n
        complast = [True] * n
        buckets: List[List[int]] = [[] for _ in range(n)]
        queries = [self._clip(q_st, q_end) for q_st, q_end in work]
        for level in range(self.m, -1, -1):
            for pos, (q_st, q_end) in enumerate(queries):
                f, l = self._prefixes(level, q_st, q_end)
                for i in range(f, l + 1):
                    if recorder is not None:
                        recorder.record(level, i, pos)
                    self._process_partition(
                        level, i, f, l, q_st, q_end,
                        compfirst[pos], complast[pos], buckets[pos],
                    )
                if f % 2 == 0:
                    compfirst[pos] = False
                if l % 2 == 1:
                    complast[pos] = False
        return self._reorder(buckets, work)

    # ------------------------------------------------------------------ #
    # Algorithm 4 — partition-based strategy
    # ------------------------------------------------------------------ #

    def batch_partition_based(
        self,
        batch: QueryBatch,
        *,
        sort: bool = True,
        recorder=None,
    ) -> List[List[int]]:
        """Per level, deplete every query relevant to a partition before
        advancing to the next partition."""
        work = batch.sorted_by_start() if sort else batch
        n = len(work)
        compfirst = [True] * n
        complast = [True] * n
        buckets: List[List[int]] = [[] for _ in range(n)]
        queries = [self._clip(q_st, q_end) for q_st, q_end in work]
        for level in range(self.m, -1, -1):
            spans = [self._prefixes(level, q_st, q_end) for q_st, q_end in queries]
            for i in self._partition_sweep(spans):
                for pos in range(n):
                    f, l = spans[pos]
                    if f <= i <= l:
                        if recorder is not None:
                            recorder.record(level, i, pos)
                        q_st, q_end = queries[pos]
                        self._process_partition(
                            level, i, f, l, q_st, q_end,
                            compfirst[pos], complast[pos], buckets[pos],
                        )
            for pos, (f, l) in enumerate(spans):
                if f % 2 == 0:
                    compfirst[pos] = False
                if l % 2 == 1:
                    complast[pos] = False
        return self._reorder(buckets, work)

    @staticmethod
    def _partition_sweep(spans: Sequence[Tuple[int, int]]):
        """Ascending order of all partitions relevant to >= 1 query."""
        relevant = set()
        for f, l in spans:
            relevant.update(range(f, l + 1))
        return sorted(relevant)

    @staticmethod
    def _reorder(buckets: List[List[int]], work: QueryBatch) -> List[List[int]]:
        restored: List[Optional[List[int]]] = [None] * len(work)
        for pos, bucket in enumerate(buckets):
            restored[int(work.order[pos])] = bucket
        return restored  # type: ignore[return-value]
