"""Synthetic interval collections (Table 3 of the paper).

The generator follows the construction of the HINT papers:

* interval **lengths** follow a zipfian distribution controlled by
  ``alpha`` — a value close to 1 yields mostly long intervals, large
  values collapse almost all lengths to 1;
* interval **positions** place the middle point of every interval
  according to a normal distribution centered at the middle of the
  domain with deviation ``sigma`` — small ``sigma`` concentrates the
  data (and hence the queries that follow the data distribution), large
  ``sigma`` spreads it out.

Table 3 parameter grids and defaults are exposed as module constants so
experiments and benchmarks share one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.intervals.collection import IntervalCollection

__all__ = [
    "SyntheticSpec",
    "generate_synthetic",
    "DOMAIN_GRID",
    "CARDINALITY_GRID",
    "ALPHA_GRID",
    "SIGMA_GRID",
    "DEFAULTS",
]

# Table 3 (defaults in bold in the paper).
DOMAIN_GRID = (32_000_000, 64_000_000, 128_000_000, 256_000_000, 512_000_000)
CARDINALITY_GRID = (10_000_000, 50_000_000, 100_000_000, 500_000_000, 1_000_000_000)
ALPHA_GRID = (1.01, 1.1, 1.2, 1.4, 1.8)
SIGMA_GRID = (10_000, 100_000, 1_000_000, 5_000_000, 10_000_000)
DEFAULTS = {
    "domain": 128_000_000,
    "cardinality": 100_000_000,
    "alpha": 1.2,
    "sigma": 1_000_000,
}


@dataclass(frozen=True)
class SyntheticSpec:
    """Construction parameters of one synthetic collection."""

    cardinality: int
    domain: int
    alpha: float
    sigma: float
    seed: int = 0

    def scaled(self, factor: float) -> "SyntheticSpec":
        """Uniformly scale cardinality (domain kept — query extents are
        expressed relative to the domain, so shapes are preserved)."""
        return SyntheticSpec(
            cardinality=max(1, int(self.cardinality * factor)),
            domain=self.domain,
            alpha=self.alpha,
            sigma=self.sigma,
            seed=self.seed,
        )


def generate_synthetic(
    cardinality: int,
    domain: int,
    alpha: float,
    sigma: float,
    *,
    seed: int = 0,
) -> IntervalCollection:
    """Generate a synthetic collection per the paper's recipe.

    Parameters
    ----------
    cardinality:
        Number of intervals.
    domain:
        Domain length; endpoints fall in ``[0, domain - 1]``.
    alpha:
        Zipf exponent of the interval lengths (must exceed 1).
    sigma:
        Standard deviation of the normal distribution that positions
        interval middle points around ``domain / 2``.
    seed:
        Deterministic RNG seed.
    """
    if cardinality < 0:
        raise ValueError("cardinality must be non-negative")
    if domain < 2:
        raise ValueError("domain must be at least 2")
    if alpha <= 1.0:
        raise ValueError("alpha must be > 1 for a zipfian length distribution")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if cardinality == 0:
        return IntervalCollection.empty()

    rng = np.random.default_rng(seed)
    lengths = rng.zipf(alpha, size=cardinality).astype(np.int64)
    np.clip(lengths, 1, domain, out=lengths)

    middles = rng.normal(loc=domain / 2.0, scale=float(sigma), size=cardinality)
    st = np.rint(middles - lengths / 2.0).astype(np.int64)
    np.clip(st, 0, domain - 1, out=st)
    end = st + lengths - 1
    np.clip(end, 0, domain - 1, out=end)
    return IntervalCollection(st, end, copy=False)


def generate_from_spec(spec: SyntheticSpec) -> IntervalCollection:
    """Generate a collection from a :class:`SyntheticSpec`."""
    return generate_synthetic(
        spec.cardinality, spec.domain, spec.alpha, spec.sigma, seed=spec.seed
    )
