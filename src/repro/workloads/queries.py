"""Query batch generators.

The paper's query workloads (Section 4):

* on the **real** datasets, query positions are uniformly distributed in
  the domain — :func:`uniform_queries`;
* on the **synthetic** datasets, query positions follow the data
  distribution — :func:`data_following_queries` samples anchor points
  from the indexed intervals themselves;
* query **extent** is a percentage of the domain, varied over
  ``{0.01, 0.05, 0.1, 0.5, 1}`` % (default 0.1 %);
* **batch size** is varied over ``{1K, 5K, 10K, 50K, 100K}`` (default
  10K real / 1K synthetic).

:func:`stabbing_queries` (extent one point) is provided for tests and
the timeline-index comparison.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.intervals.batch import QueryBatch
from repro.intervals.collection import IntervalCollection

__all__ = [
    "uniform_queries",
    "data_following_queries",
    "stabbing_queries",
    "zipfian_queries",
    "extent_from_pct",
    "EXTENT_PCT_GRID",
    "BATCH_SIZE_GRID",
    "DEFAULT_EXTENT_PCT",
]

EXTENT_PCT_GRID = (0.01, 0.05, 0.1, 0.5, 1.0)
BATCH_SIZE_GRID = (1_000, 5_000, 10_000, 50_000, 100_000)
DEFAULT_EXTENT_PCT = 0.1


def extent_from_pct(domain: int, extent_pct: float) -> int:
    """Query extent in domain units for a percentage of the domain."""
    if domain < 1:
        raise ValueError("domain must be positive")
    if extent_pct < 0:
        raise ValueError("extent_pct must be non-negative")
    return max(1, round(domain * extent_pct / 100.0))


def uniform_queries(
    count: int,
    domain: int,
    extent_pct: float = DEFAULT_EXTENT_PCT,
    *,
    seed: int = 0,
) -> QueryBatch:
    """Fixed-extent queries at uniformly random positions.

    Every query covers ``extent_from_pct(domain, extent_pct)`` values and
    starts uniformly in ``[0, domain - extent]``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    extent = extent_from_pct(domain, extent_pct)
    rng = np.random.default_rng(seed)
    max_start = max(domain - extent, 1)
    st = rng.integers(0, max_start, size=count, dtype=np.int64)
    end = np.minimum(st + extent - 1, domain - 1)
    return QueryBatch(st, end)


def data_following_queries(
    count: int,
    collection: IntervalCollection,
    extent_pct: float = DEFAULT_EXTENT_PCT,
    *,
    domain: Optional[int] = None,
    seed: int = 0,
) -> QueryBatch:
    """Fixed-extent queries whose positions follow the data distribution.

    Query anchors are middle points of intervals sampled (with
    replacement) from *collection*, so query density tracks data density
    — exactly how the paper generates queries for the synthetic
    datasets.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if len(collection) == 0:
        raise ValueError("cannot sample query positions from an empty collection")
    if domain is None:
        domain = collection.stats().domain_end + 1
    extent = extent_from_pct(domain, extent_pct)
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, len(collection), size=count, dtype=np.int64)
    anchors = (collection.st[rows] + collection.end[rows]) // 2
    st = np.clip(anchors - extent // 2, 0, max(domain - extent, 0)).astype(np.int64)
    end = np.minimum(st + extent - 1, domain - 1)
    st = np.minimum(st, end)
    return QueryBatch(st, end)


def zipfian_queries(
    count: int,
    domain: int,
    extent_pct: float = DEFAULT_EXTENT_PCT,
    *,
    s: float = 1.0,
    universe: int = 1024,
    hot_fraction: float = 0.1,
    hot_start: float = 0.0,
    seed: int = 0,
) -> QueryBatch:
    """Skewed repeating queries: a Zipf-weighted template universe.

    Models the access skew that makes result caching and affinity
    batching pay off (YCSB-style): a fixed **universe** of distinct
    query templates is laid out once, then each of the *count* emitted
    queries picks template rank ``r`` with probability proportional to
    ``(r + 1) ** -s``.  Exact templates repeat — a continuous-position
    generator would never produce a repeated query, so a result cache
    could never hit.

    The hottest ``ceil(universe * hot_fraction)`` templates are anchored
    inside a *hot span* of the domain starting at fraction *hot_start*
    and covering *hot_fraction* of it, so skew in popularity is also
    skew in **partition** affinity: hot queries hammer the same
    partition neighbourhood, which is what the partition tier and the
    affinity flush policy exploit.  The remaining (cold) templates are
    spread uniformly over the whole domain.

    ``s = 0`` degenerates to uniform template choice; larger *s* means
    heavier skew (at ``s = 1`` the top template draws ~1/H(universe) of
    all traffic).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if domain < 1:
        raise ValueError("domain must be positive")
    if s < 0:
        raise ValueError("skew s must be non-negative")
    if universe < 1:
        raise ValueError("universe must be positive")
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError("hot_fraction must lie in (0, 1]")
    if not 0.0 <= hot_start <= 1.0 - hot_fraction:
        raise ValueError("hot_start must lie in [0, 1 - hot_fraction]")
    extent = extent_from_pct(domain, extent_pct)
    rng = np.random.default_rng(seed)
    max_start = max(domain - extent, 1)
    # --- template layout: hot ranks inside the hot span, the rest
    #     uniform over the full domain -------------------------------- #
    n_hot = max(1, int(np.ceil(universe * hot_fraction)))
    hot_lo = int(hot_start * max_start)
    hot_hi = max(hot_lo + 1, int((hot_start + hot_fraction) * max_start))
    starts = np.empty(universe, dtype=np.int64)
    starts[:n_hot] = rng.integers(hot_lo, hot_hi, size=n_hot, dtype=np.int64)
    if universe > n_hot:
        starts[n_hot:] = rng.integers(
            0, max_start, size=universe - n_hot, dtype=np.int64
        )
    # --- Zipf rank sampling over the finite universe ----------------- #
    weights = (np.arange(1, universe + 1, dtype=np.float64)) ** -s
    probs = weights / weights.sum()
    ranks = rng.choice(universe, size=count, p=probs)
    st = starts[ranks]
    end = np.minimum(st + extent - 1, domain - 1)
    return QueryBatch(st, end)


def stabbing_queries(
    count: int,
    domain: int,
    *,
    seed: int = 0,
) -> QueryBatch:
    """Point (stabbing) queries at uniformly random positions."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = np.random.default_rng(seed)
    st = rng.integers(0, domain, size=count, dtype=np.int64)
    return QueryBatch(st, st.copy())
