"""Synthetic clones of the four real datasets (Table 2 of the paper).

The paper evaluates on BOOKS (Aarhus library loans), WEBKIT (git file
history), TAXIS (NYC taxi trips) and GREEND (household power usage).
None of those files can be redistributed or downloaded offline, so this
module generates *clones* matched to every characteristic the paper
publishes in Table 2: cardinality (scaled), domain length, and the
min/avg/max duration profile.

Why this substitution preserves the evaluation's behaviour: every claim
in Figure 3 is driven by *where intervals land in the HINT hierarchy* —
long intervals (BOOKS/WEBKIT, avg duration ~7% of the domain) live at
the top levels, making vertical jumps expensive and level-based
batching effective, while short intervals (TAXIS/GREEND, avg duration
<0.01% of the domain) live at the bottom levels, where horizontal
partition locality dominates and partition-based batching shines.
Placement depth depends only on ``duration / domain``, which the clones
match by construction.

Durations are drawn from a lognormal distribution fitted to the
published average, with the spread chosen per dataset to also hit the
published maximum order-of-magnitude, then clipped to
``[min_duration, max_duration]``.  Positions are uniform over the
domain, as in the loan/trip/measurement semantics of the originals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.intervals.collection import IntervalCollection

__all__ = ["RealDatasetSpec", "REAL_DATASET_SPECS", "make_realistic_clone", "DEFAULT_SCALE"]

#: Default cardinality scale — the paper's collections (2.3M-172M rows)
#: do not fit a Python benchmarking budget; shapes are scale-invariant.
DEFAULT_SCALE = 0.01


@dataclass(frozen=True)
class RealDatasetSpec:
    """Published characteristics of one real dataset (Table 2)."""

    name: str
    cardinality: int
    domain: int  # seconds
    min_duration: int
    max_duration: int
    avg_duration: float
    paper_m: int  # the m the paper chose via the HINT cost model
    sigma_log: float  # lognormal shape for the clone's duration spread

    @property
    def avg_duration_pct(self) -> float:
        return 100.0 * self.avg_duration / self.domain


REAL_DATASET_SPECS: Dict[str, RealDatasetSpec] = {
    "BOOKS": RealDatasetSpec(
        name="BOOKS",
        cardinality=2_312_602,
        domain=31_507_200,
        min_duration=1,
        max_duration=31_406_400,
        avg_duration=2_201_320,
        paper_m=10,
        sigma_log=1.6,
    ),
    "WEBKIT": RealDatasetSpec(
        name="WEBKIT",
        cardinality=2_347_346,
        domain=461_829_284,
        min_duration=1,
        max_duration=461_815_512,
        avg_duration=33_206_300,
        paper_m=12,
        sigma_log=2.2,
    ),
    "TAXIS": RealDatasetSpec(
        name="TAXIS",
        cardinality=172_668_003,
        domain=31_768_287,
        min_duration=1,
        max_duration=2_148_385,
        avg_duration=758,
        paper_m=17,
        sigma_log=1.1,
    ),
    "GREEND": RealDatasetSpec(
        name="GREEND",
        cardinality=110_115_441,
        domain=283_356_410,
        min_duration=1,
        max_duration=59_468_008,
        avg_duration=15,
        paper_m=17,
        sigma_log=1.4,
    ),
}


def _lognormal_durations(
    rng: np.random.Generator, spec: RealDatasetSpec, n: int
) -> np.ndarray:
    """Durations with mean ``avg_duration`` and spread ``sigma_log``.

    For a lognormal variable, ``mean = exp(mu + sigma^2 / 2)``; we solve
    for ``mu`` and clip into the published ``[min, max]`` range.  The
    clip nudges the realized mean; a final multiplicative correction
    pass brings it back within a few percent of the target (Table 2 of
    EXPERIMENTS.md records the realized values).
    """
    sigma = spec.sigma_log
    mu = math.log(max(spec.avg_duration, 1.0)) - sigma * sigma / 2.0
    durations = rng.lognormal(mean=mu, sigma=sigma, size=n)
    # One correction step against clipping bias.
    clipped = np.clip(durations, spec.min_duration, spec.max_duration)
    realized = clipped.mean()
    if realized > 0:
        durations *= spec.avg_duration / realized
    durations = np.clip(durations, spec.min_duration, spec.max_duration)
    return np.rint(durations).astype(np.int64)


def make_realistic_clone(
    name: str,
    *,
    cardinality: Optional[int] = None,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
) -> IntervalCollection:
    """Generate the synthetic clone of a Table 2 dataset.

    Parameters
    ----------
    name:
        One of ``"BOOKS"``, ``"WEBKIT"``, ``"TAXIS"``, ``"GREEND"``
        (case-insensitive).
    cardinality:
        Explicit number of intervals; default
        ``round(published_cardinality * scale)``.
    scale:
        Cardinality scale factor when *cardinality* is not given.
    seed:
        Deterministic RNG seed.
    """
    try:
        spec = REAL_DATASET_SPECS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of "
            f"{sorted(REAL_DATASET_SPECS)}"
        ) from None
    if cardinality is None:
        cardinality = max(1, round(spec.cardinality * scale))
    rng = np.random.default_rng(seed)
    durations = _lognormal_durations(rng, spec, cardinality)
    max_start = np.maximum(spec.domain - durations, 1)
    st = (rng.random(cardinality) * max_start).astype(np.int64)
    end = np.minimum(st + durations - 1, spec.domain - 1)
    return IntervalCollection(st, end, copy=False)
