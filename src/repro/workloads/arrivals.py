"""Bursty multi-tenant arrival traces for the network serving path.

The serving benchmarks need *open-loop* load: queries arrive on a wall
clock schedule that does not slow down when the server does — that is
what makes overload visible (a closed loop self-throttles and hides
it).  :func:`generate_arrivals` produces such a schedule as a plain
list of :class:`Arrival` records that the load generator
(:mod:`repro.net.loadgen`) replays.

The arrival process is an inhomogeneous Poisson process, sampled by
thinning: a baseline ``rate`` queries/second with periodic burst
windows where the instantaneous rate is multiplied by
``burst_factor``.  Each arrival is assigned a tenant by weighted
choice and a query interval uniform in the domain, mirroring the
uniform query generator used across the paper's benchmarks
(:func:`repro.workloads.queries.uniform_queries`).

Everything is driven by a seeded generator, so a trace is reproducible
from its spec — the load generator's worker processes can regenerate
their slice from ``(spec, seed)`` instead of pickling the full trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Arrival", "ArrivalSpec", "generate_arrivals"]


@dataclass(frozen=True)
class Arrival:
    """One scheduled query in an open-loop trace."""

    at: float  #: seconds since trace start
    tenant: str
    st: int
    end: int
    deadline_ms: int = 0  #: propagated client budget (0 = none)


@dataclass(frozen=True)
class ArrivalSpec:
    """Parameters of a bursty multi-tenant arrival trace.

    ``rate`` is the baseline offered load in queries/second; every
    ``burst_every`` seconds a window of ``burst_duration`` seconds opens
    during which the instantaneous rate is ``rate * burst_factor`` —
    that window is what drives the server past capacity in the
    overload experiments.
    """

    duration: float = 5.0
    rate: float = 200.0
    burst_factor: float = 6.0
    burst_every: float = 2.0
    burst_duration: float = 0.5
    tenants: Tuple[str, ...] = ("alpha", "beta", "gamma")
    #: relative tenant weights; None = uniform
    tenant_weights: Optional[Tuple[float, ...]] = None
    domain: int = 1 << 20  #: query positions drawn in [0, domain]
    extent: int = 1024  #: maximum query extent (uniform in [0, extent])
    deadline_ms: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.duration <= 0 or self.rate <= 0:
            raise ValueError("duration and rate must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not self.tenants:
            raise ValueError("at least one tenant is required")
        if self.tenant_weights is not None and len(
            self.tenant_weights
        ) != len(self.tenants):
            raise ValueError("tenant_weights must match tenants")


def _rate_at(spec: ArrivalSpec, t: float) -> float:
    """Instantaneous arrival rate at trace time *t*."""
    if spec.burst_factor > 1.0 and spec.burst_every > 0:
        phase = t % spec.burst_every
        if phase < spec.burst_duration:
            return spec.rate * spec.burst_factor
    return spec.rate


def generate_arrivals(spec: ArrivalSpec) -> List[Arrival]:
    """Sample the trace — an inhomogeneous Poisson process by thinning.

    Candidate arrivals are drawn at the peak rate and kept with
    probability ``rate(t) / peak``, which is the standard exact sampler
    for a time-varying Poisson process (no discretization error).
    """
    rng = np.random.default_rng(spec.seed)
    peak = spec.rate * spec.burst_factor
    weights = None
    if spec.tenant_weights is not None:
        w = np.asarray(spec.tenant_weights, dtype=np.float64)
        weights = w / w.sum()
    arrivals: List[Arrival] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / peak)
        if t >= spec.duration:
            break
        if rng.random() > _rate_at(spec, t) / peak:
            continue  # thinned: candidate falls outside the burst rate
        tenant = spec.tenants[rng.choice(len(spec.tenants), p=weights)]
        st = int(rng.integers(0, spec.domain + 1))
        end = min(st + int(rng.integers(0, spec.extent + 1)), spec.domain)
        arrivals.append(
            Arrival(
                at=t,
                tenant=tenant,
                st=st,
                end=end,
                deadline_ms=spec.deadline_ms,
            )
        )
    return arrivals
