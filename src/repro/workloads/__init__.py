"""Workload generation.

* :mod:`~repro.workloads.synthetic` — the paper's synthetic generator
  (Table 3): zipfian interval lengths controlled by ``alpha``, normally
  distributed positions controlled by ``sigma``.
* :mod:`~repro.workloads.realistic` — synthetic clones of the four real
  datasets of Table 2 (BOOKS, WEBKIT, TAXIS, GREEND), matched to their
  published cardinality/domain/duration characteristics.  The real files
  are not redistributable; DESIGN.md documents why the clones preserve
  the behaviour the evaluation depends on (placement depth in the
  hierarchy).
* :mod:`~repro.workloads.queries` — query batch generators: uniform
  positions (used on the real datasets) and data-following positions
  (used on the synthetic ones), with the paper's extent/batch-size
  parameter grids.
* :mod:`~repro.workloads.arrivals` — open-loop bursty multi-tenant
  arrival traces (inhomogeneous Poisson by thinning) for the network
  serving benchmarks and the ``serve-load`` generator.
"""

from repro.workloads.arrivals import (
    Arrival,
    ArrivalSpec,
    generate_arrivals,
)
from repro.workloads.synthetic import SyntheticSpec, generate_synthetic
from repro.workloads.realistic import (
    REAL_DATASET_SPECS,
    RealDatasetSpec,
    make_realistic_clone,
)
from repro.workloads.queries import (
    uniform_queries,
    data_following_queries,
    stabbing_queries,
)

__all__ = [
    "Arrival",
    "ArrivalSpec",
    "generate_arrivals",
    "SyntheticSpec",
    "generate_synthetic",
    "REAL_DATASET_SPECS",
    "RealDatasetSpec",
    "make_realistic_clone",
    "uniform_queries",
    "data_following_queries",
    "stabbing_queries",
]
