"""The result tier: an LRU cache of per-query answers.

Entries are keyed by the *normalized* query — endpoints clipped into the
backend's domain, exactly the normalization every index applies before
probing — plus the result mode, because the three modes materialize
different payloads (an ``int``, a ``(count, checksum)`` pair, an id
array).  The strategy name is deliberately **not** part of the key: the
repository-wide differential contract (``tests/test_differential.py``)
guarantees every strategy returns identical answers, so a result cached
under one strategy is valid for all of them.

Residency is bounded in **bytes** (ids-mode payloads dominate, so an
entry count alone would under-control memory) with an optional entry
bound on top; eviction is plain LRU.  The cache itself is a dumb store —
all invalidation logic lives in
:class:`~repro.cache.executor.CachingExecutor`, which knows when its
backend mutated.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["ResultCache"]

#: Fixed per-entry bookkeeping estimate (key tuple + dict slot + payload
#: object headers); payload array bytes are added on top.
ENTRY_OVERHEAD_BYTES = 96


def payload_nbytes(payload) -> int:
    """Approximate residency cost of one cached payload."""
    if isinstance(payload, np.ndarray):
        return ENTRY_OVERHEAD_BYTES + int(payload.nbytes)
    return ENTRY_OVERHEAD_BYTES


class ResultCache:
    """LRU map ``(st, end, mode) -> payload`` with a byte budget.

    Parameters
    ----------
    max_bytes:
        Residency budget; entries are evicted (LRU first) while the
        accounted total exceeds it.
    max_entries:
        Optional additional bound on the entry count.
    """

    def __init__(self, max_bytes: int = 64 << 20, max_entries: Optional[int] = None):
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")
        self.max_bytes = int(max_bytes)
        self.max_entries = None if max_entries is None else int(max_entries)
        self._lru: "OrderedDict[Tuple[int, int, str], tuple]" = OrderedDict()
        self._bytes = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def bytes_resident(self) -> int:
        return self._bytes

    def get(self, key: Tuple[int, int, str]):
        """Payload for *key* (refreshing recency), or ``None``."""
        entry = self._lru.get(key)
        if entry is None:
            return None
        self._lru.move_to_end(key)
        return entry[0]

    def put(self, key: Tuple[int, int, str], payload) -> None:
        """Insert (or refresh) *key*; evicts LRU entries over budget."""
        old = self._lru.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        size = payload_nbytes(payload)
        self._lru[key] = (payload, size)
        self._bytes += size
        self._evict()

    def _evict(self) -> None:
        while self._lru and (
            self._bytes > self.max_bytes
            or (self.max_entries is not None and len(self._lru) > self.max_entries)
        ):
            _, (_, size) = self._lru.popitem(last=False)
            self._bytes -= size
            self.evictions += 1

    def set_budget(
        self, max_bytes: Optional[int] = None, max_entries: Optional[int] = None
    ) -> None:
        """Shrink/grow the budgets; shrinking evicts immediately."""
        if max_bytes is not None:
            if max_bytes < 1:
                raise ValueError("max_bytes must be positive")
            self.max_bytes = int(max_bytes)
        if max_entries is not None:
            if max_entries < 1:
                raise ValueError("max_entries must be positive")
            self.max_entries = int(max_entries)
        self._evict()

    # ------------------------------------------------------------------ #
    # invalidation primitives (driven by the executor)
    # ------------------------------------------------------------------ #

    def clear(self) -> int:
        """Drop everything; returns the number of entries dropped."""
        dropped = len(self._lru)
        self._lru.clear()
        self._bytes = 0
        return dropped

    def drop_overlapping(self, regions: Iterable[Tuple[int, int]]) -> int:
        """Drop entries whose query range G-overlaps any ``(lo, hi)``.

        A mutated interval ``[lo, hi]`` can only change the answer of
        queries overlapping it, so everything else stays valid — the
        selective-invalidation rule :class:`CachingExecutor` applies for
        mutation deltas it can attribute.
        """
        spans: List[Tuple[int, int]] = [
            (int(lo), int(hi)) for lo, hi in regions
        ]
        if not spans:
            return 0
        doomed = [
            key
            for key in self._lru
            if any(key[0] <= hi and lo <= key[1] for lo, hi in spans)
        ]
        for key in doomed:
            _, size = self._lru.pop(key)
            self._bytes -= size
        return len(doomed)
