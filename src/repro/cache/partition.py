"""The partition tier: memoized per-partition probe answers.

The partition-based strategy (Algorithm 4) derives, per level, each
query's *relevant partition range* ``[f, l]`` and resolves it with a
fixed set of per-partition probes: a both-sided filter on ``O_in`` when
the query is anchored in one partition, an ``st <= q.end`` prefix cut,
an ``end >= q.st`` suffix cut, and comparison-free full ranges.  Those
probes are pure functions of ``(level, table, partition, operand)`` —
exactly the sharing the paper exploits *within* one batch.  This module
extends the sharing **across batches**: probe answers are memoized in an
LRU :class:`PartitionProbeCache`, so a later query anchored at a hot
partition with a previously seen endpoint skips the ``searchsorted`` and
mask work entirely.

Comparison-free contributions (full partitions, middle ranges) are *not*
cached: they are O(1) offset subtractions (plus a prefix-XOR gather in
checksum mode, an id-slice view in ids mode) — caching them would spend
residency on work that costs nothing to recompute.

:func:`partition_cached_execute` is the evaluation path that consumes
the cache.  It mirrors the per-(query, level) case analysis of
:func:`repro.core.strategies._process_level` exactly — same tables, same
flag algebra, same partition ranges — and the cache-differential suite
(``tests/test_cache_differential.py``) holds it to bit-identical
agreement with every registered strategy.  The cache is only valid for
the immutable :class:`~repro.hint.index.HintIndex` it was filled
against; :class:`~repro.cache.executor.CachingExecutor` clears it
whenever the backend changes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.core.result import MODES, BatchResult
from repro.hint.index import HintIndex
from repro.intervals.batch import QueryBatch

__all__ = ["PartitionProbeCache", "partition_cached_execute"]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.setflags(write=False)


class PartitionProbeCache:
    """LRU memo of per-partition probe results.

    Keys are ``(kind, mode, level, partition, operand...)`` tuples built
    by :func:`partition_cached_execute`; values are ``(count, xor)``
    pairs (count/checksum modes) or read-only id arrays (ids mode).
    """

    def __init__(self, max_entries: int = 1 << 16):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._lru: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._lru)

    def get(self, key):
        entry = self._lru.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._lru.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key, value) -> None:
        self._lru[key] = value
        if len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)
            self.evictions += 1

    def clear(self) -> int:
        dropped = len(self._lru)
        self._lru.clear()
        return dropped


class _Acc:
    """Per-query accumulator shared by the three result modes."""

    __slots__ = ("counts", "sums", "ids")

    def __init__(self, n: int, mode: str):
        self.counts = np.zeros(n, dtype=np.int64)
        self.sums = np.zeros(n, dtype=np.int64) if mode == "checksum" else None
        self.ids = [[] for _ in range(n)] if mode == "ids" else None

    def add_agg(self, pos: int, cnt: int, xor: int) -> None:
        self.counts[pos] += cnt
        if self.sums is not None:
            self.sums[pos] ^= xor

    def add_ids(self, pos: int, arr: np.ndarray) -> None:
        if arr.size:
            self.counts[pos] += arr.size
            self.ids[pos].append(arr)

    def finalize(self, order: np.ndarray, mode: str) -> BatchResult:
        n = self.counts.size
        counts = np.empty_like(self.counts)
        counts[order] = self.counts
        if mode == "count":
            return BatchResult(counts)
        if mode == "checksum":
            sums = np.empty_like(self.sums)
            sums[order] = self.sums
            return BatchResult(counts, checksums=sums)
        out = [_EMPTY] * n
        for pos in range(n):
            chunks = self.ids[pos]
            if chunks:
                out[int(order[pos])] = (
                    chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                )
        return BatchResult(counts, out)


def _xor_of(ids: np.ndarray) -> int:
    if ids.size == 0:
        return 0
    return int(np.bitwise_xor.reduce(ids))


def partition_cached_execute(
    index: HintIndex,
    batch: QueryBatch,
    mode: str = "count",
    cache: Optional[PartitionProbeCache] = None,
) -> BatchResult:
    """Evaluate *batch* with all comparison probes served via *cache*.

    Returns results in the caller's original batch order, identical to
    :func:`~repro.core.strategies.run_strategy` on the same inputs.
    """
    if mode not in MODES:
        raise ValueError(f"unknown result mode {mode!r}; expected one of {MODES}")
    n = len(batch)
    if n == 0:
        return BatchResult.empty(mode)
    if cache is None:
        cache = PartitionProbeCache()
    m = index.m
    top = (1 << m) - 1
    q_st = np.clip(batch.st, 0, top)
    q_end = np.clip(batch.end, 0, top)
    levels = index.levels
    occupied = [data.total() > 0 for data in levels]
    want_ids = mode == "ids"
    want_xor = mode == "checksum"
    acc = _Acc(n, mode)

    # ---- uncached comparison-free contribution ----------------------- #

    def full_range(pos, table, lo, hi):
        if hi <= lo:
            return
        if want_ids:
            view = table.ids[lo:hi]
            view.setflags(write=False)
            acc.add_ids(pos, view)
        elif want_xor:
            xp = table.xor_prefix
            acc.add_agg(pos, hi - lo, int(xp[hi] ^ xp[lo]))
        else:
            acc.add_agg(pos, hi - lo, 0)

    def full(pos, table, part):
        lo, hi = table.bounds(part)
        full_range(pos, table, lo, hi)

    # ---- memoized comparison probes ----------------------------------- #

    def apply(pos, val):
        if want_ids:
            acc.add_ids(pos, val)
        else:
            acc.add_agg(pos, val[0], val[1])

    empty_val = _EMPTY if want_ids else (0, 0)

    def o_in_both(pos, level, table, part, s, e):
        key = ("oib", mode, level, part, s, e)
        val = cache.get(key)
        if val is None:
            lo, hi = table.bounds(part)
            if hi <= lo:
                val = empty_val
            else:
                k = int(np.searchsorted(table.st[lo:hi], e, side="right"))
                ids = table.ids[lo : lo + k][table.end[lo : lo + k] >= s]
                ids.setflags(write=False)
                val = (
                    ids
                    if want_ids
                    else (int(ids.size), _xor_of(ids) if want_xor else 0)
                )
            cache.put(key, val)
        apply(pos, val)

    def o_in_end_geq(pos, level, table, part, s):
        key = ("oig", mode, level, part, s)
        val = cache.get(key)
        if val is None:
            lo, hi = table.bounds(part)
            if hi <= lo:
                val = empty_val
            else:
                ids = table.ids[lo:hi][table.end[lo:hi] >= s]
                ids.setflags(write=False)
                val = (
                    ids
                    if want_ids
                    else (int(ids.size), _xor_of(ids) if want_xor else 0)
                )
            cache.put(key, val)
        apply(pos, val)

    def st_leq(pos, tag, level, table, part, e):
        key = ("leq", tag, mode, level, part, e)
        val = cache.get(key)
        if val is None:
            lo, hi = table.bounds(part)
            if hi <= lo:
                val = empty_val
            elif want_ids:
                k = int(np.searchsorted(table.st[lo:hi], e, side="right"))
                val = table.ids[lo : lo + k]
                val.setflags(write=False)
            else:
                k = int(np.searchsorted(table.st[lo:hi], e, side="right"))
                if want_xor:
                    xp = table.xor_prefix
                    val = (k, int(xp[lo + k] ^ xp[lo]))
                else:
                    val = (k, 0)
            cache.put(key, val)
        apply(pos, val)

    def end_geq(pos, tag, level, table, part, s):
        key = ("geq", tag, mode, level, part, s)
        val = cache.get(key)
        if val is None:
            lo, hi = table.bounds(part)
            if hi <= lo:
                val = empty_val
            else:
                k = int(np.searchsorted(table.end[lo:hi], s, side="left"))
                if want_ids:
                    val = table.ids[lo + k : hi]
                    val.setflags(write=False)
                elif want_xor:
                    xp = table.xor_prefix
                    val = (hi - (lo + k), int(xp[hi] ^ xp[lo + k]))
                else:
                    val = (hi - (lo + k), 0)
            cache.put(key, val)
        apply(pos, val)

    # ---- the per-(query, level) sweep --------------------------------- #

    st_list = q_st.tolist()
    end_list = q_end.tolist()
    for pos in range(n):
        s = st_list[pos]
        e = end_list[pos]
        compfirst = True
        complast = True
        for level in range(m, -1, -1):
            shift = m - level
            f = s >> shift
            l = e >> shift
            if occupied[level]:
                data = levels[level]
                o_in, o_aft, r_in, r_aft = data.tables()
                # first relevant partition — the same case split as
                # strategies._process_level (Lines 6-21 of Algorithm 1)
                if f == l and compfirst and complast:
                    o_in_both(pos, level, o_in, f, s, e)
                    st_leq(pos, "oa", level, o_aft, f, e)
                    end_geq(pos, "ri", level, r_in, f, s)
                    full(pos, r_aft, f)
                elif compfirst:
                    o_in_end_geq(pos, level, o_in, f, s)
                    full(pos, o_aft, f)
                    end_geq(pos, "ri", level, r_in, f, s)
                    full(pos, r_aft, f)
                elif f == l and complast:
                    st_leq(pos, "oi", level, o_in, f, e)
                    st_leq(pos, "oa", level, o_aft, f, e)
                    full(pos, r_in, f)
                    full(pos, r_aft, f)
                else:
                    full(pos, o_in, f)
                    full(pos, o_aft, f)
                    full(pos, r_in, f)
                    full(pos, r_aft, f)
                if l > f:
                    if l > f + 1:
                        full_range(
                            pos, o_in, int(o_in.offsets[f + 1]), int(o_in.offsets[l])
                        )
                        full_range(
                            pos, o_aft, int(o_aft.offsets[f + 1]), int(o_aft.offsets[l])
                        )
                    if complast:
                        st_leq(pos, "oi", level, o_in, l, e)
                        st_leq(pos, "oa", level, o_aft, l, e)
                    else:
                        full(pos, o_in, l)
                        full(pos, o_aft, l)
            if not f & 1:
                compfirst = False
            if l & 1:
                complast = False

    return acc.finalize(batch.order, mode)
