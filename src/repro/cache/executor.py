"""The caching execution front end.

:class:`CachingExecutor` wraps any backend that the
:class:`~repro.service.BatchingQueryService` can install — a
:class:`~repro.hint.index.HintIndex`, a
:class:`~repro.hint.dynamic.DynamicHint`, a
:class:`~repro.shard.ShardedHint`, an
:class:`~repro.engine.ExecutionEngine`, anything with the
``run_strategy``-shaped ``execute()`` surface — and answers repeated
queries from a two-tier cache:

* the **result tier** (:class:`~repro.cache.result.ResultCache`) holds
  exact per-query answers keyed by the normalized query and result mode;
* the optional **partition tier**
  (:class:`~repro.cache.partition.PartitionProbeCache`) memoizes
  per-partition comparison probes for plain :class:`HintIndex` backends,
  so even *novel* queries anchored at hot partitions with previously
  seen endpoints skip probe work.

Invalidation contract
---------------------

The executor may never serve a stale answer.  Backends are classified by
mutability:

* immutable backends (``HintIndex``, ``ShardedHint``,
  ``ExecutionEngine``) never invalidate — entries live until evicted or
  the backend is replaced;
* a mutable :class:`DynamicHint` exposes a monotonic
  :attr:`~repro.hint.dynamic.DynamicHint.cache_version` plus a bounded
  mutation log.  Before every batch the executor compares versions; on a
  change it asks for the mutation deltas and **selectively** drops only
  cached queries overlapping a mutated interval.  When the deltas are
  unavailable (log overflow) — or when the selective pass itself fails
  (the :data:`~repro.verify.faults.SITE_CACHE_INVALIDATE` injection
  site) — the executor degrades to a **full flush**: strictly more
  invalidation than needed, never less, so a failed invalidation can
  produce extra misses but never a wrong answer;
* replacing the backend (:meth:`swap_backend`, or installing a fresh
  executor through ``service.swap_index``) always flushes both tiers.

``DynamicHint`` rebuilds (``_rebuild``/``compact``) do *not* bump the
content version — a merge-and-rebuild changes the physical layout but
not one query answer — which is itself proven by the stateful cache
machine (``tests/test_cache_stateful.py``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

import repro.obs as obs
from repro.cache.partition import PartitionProbeCache, partition_cached_execute
from repro.cache.result import ResultCache
from repro.core.result import MODES, BatchResult
from repro.core.strategies import STRATEGIES, run_strategy
from repro.hint.dynamic import DynamicHint
from repro.intervals.batch import QueryBatch
from repro.verify.faults import SITE_CACHE_INVALIDATE, FaultPlan

__all__ = ["CachingExecutor", "CacheCounters"]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.setflags(write=False)


@dataclass(frozen=True)
class CacheCounters:
    """Point-in-time cache statistics (see :meth:`CachingExecutor.stats`)."""

    hits: int
    misses: int
    evictions: int
    invalidated_entries: int
    invalidation_flushes: int
    bytes_resident: int
    entries: int
    partition_hits: int
    partition_misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachingExecutor:
    """Result/partition cache in front of an execution backend.

    Parameters
    ----------
    backend:
        The wrapped index/executor.  Self-executing backends (those with
        an ``execute`` method) are delegated to as-is; a plain
        :class:`HintIndex` runs through
        :func:`~repro.core.strategies.run_strategy` (or the
        partition-cached path); a :class:`DynamicHint` is served through
        its single-query API so mutations are always visible.
    max_bytes / max_entries:
        Result-tier residency budgets (see :class:`ResultCache`).
    partition_tier:
        Enable the partition probe cache.  Only effective for plain
        :class:`HintIndex` backends (the only backend whose partitions
        the executor can probe directly); ignored otherwise.
    partition_max_entries:
        Probe-cache entry bound.
    fault_plan:
        Optional :class:`~repro.verify.faults.FaultPlan`; the
        :data:`~repro.verify.faults.SITE_CACHE_INVALIDATE` site fires at
        the start of every selective invalidation pass, and an injected
        failure degrades that pass to a full flush.  The attribute is
        public and may be re-armed between batches (tests do).

    Examples
    --------
    >>> from repro import HintIndex, IntervalCollection, QueryBatch
    >>> from repro.cache import CachingExecutor
    >>> index = HintIndex(IntervalCollection.from_pairs([(2, 5), (4, 9)]), m=4)
    >>> cached = CachingExecutor(index)
    >>> batch = QueryBatch([0, 8], [3, 12])
    >>> cached.execute(batch).counts.tolist()
    [1, 1]
    >>> cached.execute(batch).counts.tolist()  # served from cache
    [1, 1]
    >>> cached.stats().hits
    2
    """

    def __init__(
        self,
        backend,
        *,
        max_bytes: int = 64 << 20,
        max_entries: Optional[int] = None,
        partition_tier: bool = False,
        partition_max_entries: int = 1 << 16,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self._lock = threading.RLock()
        self._results = ResultCache(max_bytes, max_entries)
        self._pcache = (
            PartitionProbeCache(partition_max_entries) if partition_tier else None
        )
        self.fault_plan = fault_plan
        self._hits = 0
        self._misses = 0
        self._invalidated = 0
        self._flushes = 0
        self._install(backend)

    # ------------------------------------------------------------------ #
    # backend management
    # ------------------------------------------------------------------ #

    def _install(self, backend) -> None:
        self._backend = backend
        if isinstance(backend, DynamicHint):
            self._kind = "dynamic"
        elif hasattr(backend, "execute"):
            self._kind = "execute"
        elif hasattr(backend, "levels") and hasattr(backend, "m"):
            self._kind = "index"
        else:
            raise TypeError(
                "backend must be a DynamicHint, expose execute(), or be a "
                f"HintIndex-like object; got {type(backend).__name__}"
            )
        self._seen_version = getattr(backend, "cache_version", 0)
        self._top = self._resolve_top(backend)

    @staticmethod
    def _resolve_top(backend) -> Optional[int]:
        for obj in (backend, getattr(backend, "_index", None)):
            if obj is None:
                continue
            top = getattr(obj, "_domain_top", None)
            if top is not None:
                return int(top)
            m = getattr(obj, "m", None)
            if m is not None:
                return (1 << int(m)) - 1
        return None

    @property
    def backend(self):
        """The currently wrapped backend."""
        return self._backend

    def swap_backend(self, new_backend, *, close_old: bool = False):
        """Install *new_backend*; flushes both tiers; returns the old one.

        The cache-preserving counterpart of
        ``service.swap_index(CachingExecutor(...))`` — use it when the
        executor itself stays installed and only the index underneath
        changes (e.g. after an offline rebuild).
        """
        with self._lock:
            old = self._backend
            self._flush_all()
            self._install(new_backend)
        if close_old:
            close = getattr(old, "close", None)
            if close is not None:
                close()
        return old

    def close(self) -> None:
        """Close the wrapped backend (when it is closable)."""
        close = getattr(self._backend, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #

    def _flush_all(self) -> None:
        self._invalidated += self._results.clear()
        if self._pcache is not None:
            self._invalidated += self._pcache.clear()
        self._flushes += 1

    def invalidate(self, lo: Optional[int] = None, hi: Optional[int] = None) -> None:
        """Drop cached results overlapping ``[lo, hi]`` (or everything).

        The selective pass fires the ``cache.invalidate`` fault site; a
        failure degrades to a full flush — never a stale entry.
        """
        with self._lock:
            if lo is None or hi is None:
                self._flush_all()
                return
            self._apply_regions([(int(lo), int(hi))])

    def _apply_regions(self, regions) -> None:
        """Selective drop with the degrade-to-flush contract."""
        try:
            if self.fault_plan is not None:
                self.fault_plan.fire(SITE_CACHE_INVALIDATE)
            if regions is None:
                raise RuntimeError("mutation deltas unavailable")
            self._invalidated += self._results.drop_overlapping(regions)
            # Probe answers depend on physical partition contents, which
            # any mutation may reshape; the partition tier is never used
            # for mutable backends, but clear defensively anyway.
            if self._pcache is not None:
                self._invalidated += self._pcache.clear()
        except Exception:
            self._flush_all()

    def _maybe_invalidate(self) -> None:
        version = getattr(self._backend, "cache_version", None)
        if version is None or version == self._seen_version:
            return
        regions = None
        dirty_since = getattr(self._backend, "dirty_since", None)
        if dirty_since is not None:
            regions = dirty_since(self._seen_version)
        self._apply_regions(regions)
        self._seen_version = version

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def execute(
        self,
        batch: QueryBatch,
        *,
        strategy: str = "partition-based",
        mode: str = "count",
    ) -> BatchResult:
        """Evaluate *batch*; results in caller order, hits served cached.

        Mirrors :func:`~repro.core.strategies.run_strategy` — same
        strategy names, same result modes, same ordering contract — so
        the executor installs into a
        :class:`~repro.service.BatchingQueryService` via ``swap_index``
        with zero call-site changes, exactly like
        :class:`~repro.shard.ShardedHint` and
        :class:`~repro.engine.ExecutionEngine`.
        """
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; available: {sorted(STRATEGIES)}"
            )
        if mode not in MODES:
            raise ValueError(
                f"unknown result mode {mode!r}; expected one of {MODES}"
            )
        n = len(batch)
        if n == 0:
            return BatchResult.empty(mode)
        ob = obs.active()
        if ob is None:
            return self._execute_inner(batch, strategy, mode, None)
        with ob.span(
            "cache.execute", strategy=strategy, queries=n, mode=mode
        ) as sp:
            pre_hits, pre_misses = self._hits, self._misses
            result = self._execute_inner(batch, strategy, mode, ob)
            sp.attrs["entries"] = len(self._results)
            sp.attrs["hits"] = self._hits - pre_hits
            sp.attrs["misses"] = self._misses - pre_misses
            return result

    def _execute_inner(self, batch, strategy, mode, ob) -> BatchResult:
        n = len(batch)
        with self._lock:
            pre = (self._hits, self._misses, self._results.evictions,
                   self._invalidated, self._flushes)
            self._maybe_invalidate()
            if self._top is not None:
                q_st = np.clip(batch.st, 0, self._top)
                q_end = np.clip(batch.end, 0, self._top)
            else:
                q_st, q_end = batch.st, batch.end
            st_list = q_st.tolist()
            end_list = q_end.tolist()
            payloads: List = [None] * n
            miss_keys: List[Tuple[int, int]] = []
            miss_positions: dict = {}
            for pos in range(n):
                key = (st_list[pos], end_list[pos], mode)
                payload = self._results.get(key)
                if payload is not None:
                    payloads[pos] = payload
                    self._hits += 1
                    continue
                qkey = (st_list[pos], end_list[pos])
                if qkey in miss_positions:
                    # Within-batch duplicate of a missed query: answered
                    # from that miss's shared execution, no extra
                    # backend work — counted as a hit.
                    self._hits += 1
                    miss_positions[qkey].append(pos)
                else:
                    self._misses += 1
                    miss_positions[qkey] = [pos]
                    miss_keys.append(qkey)
            if miss_keys:
                sub = QueryBatch(
                    [k[0] for k in miss_keys], [k[1] for k in miss_keys]
                )
                miss_result = self._execute_misses(sub, strategy, mode)
                for i, qkey in enumerate(miss_keys):
                    payload = self._payload_of(miss_result, i, mode)
                    self._results.put((qkey[0], qkey[1], mode), payload)
                    for pos in miss_positions[qkey]:
                        payloads[pos] = payload
            result = self._assemble(payloads, batch.order, mode)
            if ob is not None:
                ob.record_cache_batch(
                    hits=self._hits - pre[0],
                    misses=self._misses - pre[1],
                    evictions=self._results.evictions - pre[2],
                    invalidated=self._invalidated - pre[3],
                    flushes=self._flushes - pre[4],
                    bytes_resident=self._results.bytes_resident,
                    entries=len(self._results),
                )
            return result

    def _execute_misses(self, sub: QueryBatch, strategy: str, mode: str) -> BatchResult:
        if self._kind == "execute":
            return self._backend.execute(sub, strategy=strategy, mode=mode)
        if self._kind == "dynamic":
            arrays = [
                np.asarray(self._backend.query(s, e), dtype=np.int64)
                for s, e in sub
            ]
            return BatchResult.from_id_arrays(arrays, mode)
        if self._pcache is not None:
            return partition_cached_execute(self._backend, sub, mode, self._pcache)
        return run_strategy(strategy, self._backend, sub, mode=mode)

    @staticmethod
    def _payload_of(result: BatchResult, pos: int, mode: str):
        if mode == "count":
            return int(result.counts[pos])
        if mode == "checksum":
            return (int(result.counts[pos]), result.query_checksum(pos))
        arr = np.asarray(result.ids(pos), dtype=np.int64)
        try:
            arr.setflags(write=False)
        except ValueError:  # non-owned writable base; keep a private copy
            arr = arr.copy()
            arr.setflags(write=False)
        return arr

    @staticmethod
    def _assemble(payloads: List, order: np.ndarray, mode: str) -> BatchResult:
        n = len(payloads)
        counts = np.empty(n, dtype=np.int64)
        if mode == "count":
            for pos in range(n):
                counts[int(order[pos])] = payloads[pos]
            return BatchResult(counts)
        if mode == "checksum":
            sums = np.empty(n, dtype=np.int64)
            for pos in range(n):
                cnt, xor = payloads[pos]
                caller = int(order[pos])
                counts[caller] = cnt
                sums[caller] = xor
            return BatchResult(counts, checksums=sums)
        ids: List[np.ndarray] = [_EMPTY] * n
        for pos in range(n):
            arr = payloads[pos]
            caller = int(order[pos])
            ids[caller] = arr
            counts[caller] = arr.size
        return BatchResult(counts, ids)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> CacheCounters:
        """Current hit/miss/eviction/invalidation/residency counters."""
        with self._lock:
            return CacheCounters(
                hits=self._hits,
                misses=self._misses,
                evictions=self._results.evictions,
                invalidated_entries=self._invalidated,
                invalidation_flushes=self._flushes,
                bytes_resident=self._results.bytes_resident,
                entries=len(self._results),
                partition_hits=self._pcache.hits if self._pcache else 0,
                partition_misses=self._pcache.misses if self._pcache else 0,
            )

    def clear(self) -> None:
        """Flush both tiers (counted as an invalidation flush)."""
        with self._lock:
            self._flush_all()

    def set_budget(
        self, max_bytes: Optional[int] = None, max_entries: Optional[int] = None
    ) -> None:
        """Adjust result-tier budgets; shrinking evicts immediately."""
        with self._lock:
            self._results.set_budget(max_bytes, max_entries)

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"CachingExecutor(kind={self._kind!r}, entries={s.entries}, "
            f"bytes={s.bytes_resident}, hit_rate={s.hit_rate:.2f})"
        )
