"""Live result/partition caching and affinity-aware flush scheduling.

This package closes the loop from *measuring* batch sharing
(``repro.analysis.sharing``, ``repro.analysis.cache``) to *exploiting*
it in the serving path:

* :class:`~repro.cache.result.ResultCache` — LRU per-query answers with
  a byte residency budget;
* :class:`~repro.cache.partition.PartitionProbeCache` /
  :func:`~repro.cache.partition.partition_cached_execute` — memoized
  per-partition comparison probes (the partition tier);
* :class:`~repro.cache.executor.CachingExecutor` — the
  ``run_strategy``-shaped front end that wires both tiers in front of
  any backend and owns the never-stale invalidation contract;
* :class:`~repro.cache.affinity.AffinityFlushPolicy` — data-driven
  flush selection for the service's pending queue with a starvation
  bound.

See ``docs/caching.md`` for the design and the invalidation rules.
"""

from repro.cache.affinity import AffinityFlushPolicy
from repro.cache.executor import CacheCounters, CachingExecutor
from repro.cache.partition import PartitionProbeCache, partition_cached_execute
from repro.cache.result import ResultCache

__all__ = [
    "AffinityFlushPolicy",
    "CacheCounters",
    "CachingExecutor",
    "PartitionProbeCache",
    "ResultCache",
    "partition_cached_execute",
]
