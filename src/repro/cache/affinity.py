"""Affinity-aware flush selection for the batching service.

The paper's batch strategies win by sharing per-partition work across
queries that touch the same partitions; LifeRaft (PAPERS.md) schedules
*data-driven* — it groups pending queries by the data they touch instead
of draining strictly FIFO.  :class:`AffinityFlushPolicy` brings that to
:class:`~repro.service.BatchingQueryService`: at every flush it picks
which staged queries to include by **partition affinity** (queries whose
anchors land in the same partition neighbourhood flush together, so the
partition-based strategy — and the result/probe caches in front of it —
see denser sharing), bounded by a **starvation rule**: a query passed
over ``starvation_bound - 1`` times is force-included in the next flush,
FIFO-first, so no query ever waits more than ``starvation_bound``
flushes while it is eligible.

The policy is advisory: the service validates every selection (unique
in-range indices, within capacity) and falls back to plain FIFO if the
policy misbehaves, so a buggy policy can reorder work but never lose or
duplicate a future.
"""

from __future__ import annotations

from collections import defaultdict
from typing import List, Sequence

__all__ = ["AffinityFlushPolicy"]


class AffinityFlushPolicy:
    """Select flush batches by partition affinity with a starvation bound.

    Parameters
    ----------
    starvation_bound:
        Maximum number of flushes any eligible query may wait.  A query
        deferred ``starvation_bound - 1`` times is force-included next
        flush (FIFO-first among starved queries).  ``1`` degenerates to
        pure FIFO.  The bound holds whenever the number of
        simultaneously starved queries fits the flush capacity — i.e.
        unless admission outruns service entirely, in which case
        starved queries still drain FIFO-first.
    grain_bits:
        Affinity granularity: queries bucket by ``st >> grain_bits``.
        ``0`` buckets by exact start; larger values merge neighbouring
        anchors (for an index with ``m`` levels, ``grain_bits = m - k``
        buckets by the level-``k`` partition of the query's start).

    Attributes
    ----------
    flushes:
        Number of selections performed.
    starved_promoted:
        Total queries force-included by the starvation rule.
    """

    def __init__(self, starvation_bound: int = 4, grain_bits: int = 0):
        if starvation_bound < 1:
            raise ValueError("starvation_bound must be positive")
        if grain_bits < 0:
            raise ValueError("grain_bits must be non-negative")
        self.starvation_bound = int(starvation_bound)
        self.grain_bits = int(grain_bits)
        self.flushes = 0
        self.starved_promoted = 0

    def _bucket(self, item) -> int:
        return int(item.st) >> self.grain_bits

    def select(self, pending: Sequence, max_batch: int) -> List[int]:
        """Indices (into *pending*) of the queries to flush now.

        Called by the service with its lock held; *pending* is in FIFO
        order and every item carries a ``deferred`` counter (flushes it
        has already been passed over).  The returned batch is grouped by
        affinity bucket — contiguous runs of same-bucket queries, sorted
        ``(st, end)`` within a bucket so duplicate queries sit adjacent
        for the result cache — but *not* globally sorted; the
        partition-based strategy sorts internally (warning when asked
        not to, see ``tests/test_cache_affinity.py``).
        """
        self.flushes += 1
        n = len(pending)
        if n <= max_batch:
            # Everything flushes; still group by bucket for sharing.
            order = sorted(
                range(n),
                key=lambda i: (
                    self._bucket(pending[i]),
                    int(pending[i].st),
                    int(pending[i].end),
                ),
            )
            return order
        chosen: List[int] = []
        chosen_set = set()
        # 1. Starvation rule: anything that would exceed the bound goes
        #    first, in FIFO order.
        for i in range(n):
            if pending[i].deferred >= self.starvation_bound - 1:
                chosen.append(i)
                chosen_set.add(i)
                self.starved_promoted += 1
                if len(chosen) >= max_batch:
                    return chosen
        # 2. Fill the rest from the densest affinity buckets.
        buckets = defaultdict(list)
        for i in range(n):
            if i not in chosen_set:
                buckets[self._bucket(pending[i])].append(i)
        room = max_batch - len(chosen)
        for key in sorted(buckets, key=lambda k: (-len(buckets[k]), k)):
            members = sorted(
                buckets[key],
                key=lambda i: (int(pending[i].st), int(pending[i].end)),
            )
            take = members[:room]
            chosen.extend(take)
            room -= len(take)
            if room <= 0:
                break
        return chosen

    def __repr__(self) -> str:
        return (
            f"AffinityFlushPolicy(starvation_bound={self.starvation_bound}, "
            f"grain_bits={self.grain_bits}, flushes={self.flushes}, "
            f"starved_promoted={self.starved_promoted})"
        )
