"""Interval relationship predicates.

The paper evaluates the widely adopted **G-OVERLAPS** (generalized
overlap) relationship: a data interval ``s`` qualifies for query ``q``
when the closed intervals intersect, i.e. ``s.st <= q.end`` and
``q.st <= s.end``.  The full set of basic Allen's Algebra relationships
[Allen 1983] is provided as well, because HINT (VLDB J. 2023) supports
selection queries under any of them and our tests exercise the
predicates directly.

All predicates are vectorized: ``st`` / ``end`` may be scalars or numpy
arrays, and broadcasting follows numpy rules.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "g_overlaps",
    "allen_equals",
    "allen_precedes",
    "allen_preceded_by",
    "allen_meets",
    "allen_met_by",
    "allen_overlaps",
    "allen_overlapped_by",
    "allen_contains",
    "allen_contained_by",
    "allen_starts",
    "allen_started_by",
    "allen_finishes",
    "allen_finished_by",
]


def g_overlaps(st, end, q_st, q_end):
    """Generalized overlap: the closed intervals share at least a point.

    This is the selection predicate of the paper:
    ``s.st <= q.st <= s.end  or  q.st <= s.st <= q.end``.
    """
    return np.logical_and(np.less_equal(st, q_end), np.less_equal(q_st, end))


def allen_equals(st, end, q_st, q_end):
    """EQUALS: both endpoints coincide."""
    return np.logical_and(np.equal(st, q_st), np.equal(end, q_end))


def allen_precedes(st, end, q_st, q_end):
    """PRECEDES (before): ``s`` ends strictly before ``q`` starts."""
    return np.less(end, q_st)


def allen_preceded_by(st, end, q_st, q_end):
    """PRECEDED-BY (after): ``s`` starts strictly after ``q`` ends."""
    return np.greater(st, q_end)


def allen_meets(st, end, q_st, q_end):
    """MEETS: ``s`` ends exactly where ``q`` starts (and starts earlier).

    The strictness conditions keep the thirteen relations a partition on
    closed discrete intervals: a point interval at ``q.st`` is STARTS
    (or EQUALS), not MEETS, and touching a *point query* from the left
    is FINISHED-BY.
    """
    return np.logical_and(
        np.equal(end, q_st),
        np.logical_and(np.less(st, q_st), np.less(end, q_end)),
    )


def allen_met_by(st, end, q_st, q_end):
    """MET-BY: ``s`` starts exactly where ``q`` ends (and ends later)."""
    return np.logical_and(
        np.equal(st, q_end),
        np.logical_and(np.greater(end, q_end), np.greater(st, q_st)),
    )


def allen_overlaps(st, end, q_st, q_end):
    """OVERLAPS: ``s`` starts first and they strictly interleave."""
    return np.logical_and(
        np.less(st, q_st),
        np.logical_and(np.greater(end, q_st), np.less(end, q_end)),
    )


def allen_overlapped_by(st, end, q_st, q_end):
    """OVERLAPPED-BY: ``q`` starts first and they strictly interleave."""
    return np.logical_and(
        np.greater(st, q_st),
        np.logical_and(np.less(st, q_end), np.greater(end, q_end)),
    )


def allen_contains(st, end, q_st, q_end):
    """CONTAINS: ``s`` strictly covers ``q`` on both sides.

    One-sided coverage with a shared endpoint is STARTED-BY or
    FINISHED-BY, keeping the relations disjoint.
    """
    return np.logical_and(np.less(st, q_st), np.greater(end, q_end))


def allen_contained_by(st, end, q_st, q_end):
    """CONTAINED-BY (during): ``q`` strictly covers ``s`` on both sides."""
    return np.logical_and(np.greater(st, q_st), np.less(end, q_end))


def allen_starts(st, end, q_st, q_end):
    """STARTS: same start, ``s`` ends strictly earlier."""
    return np.logical_and(np.equal(st, q_st), np.less(end, q_end))


def allen_started_by(st, end, q_st, q_end):
    """STARTED-BY: same start, ``s`` ends strictly later."""
    return np.logical_and(np.equal(st, q_st), np.greater(end, q_end))


def allen_finishes(st, end, q_st, q_end):
    """FINISHES: same end, ``s`` starts strictly later."""
    return np.logical_and(np.equal(end, q_end), np.greater(st, q_st))


def allen_finished_by(st, end, q_st, q_end):
    """FINISHED-BY: same end, ``s`` starts strictly earlier."""
    return np.logical_and(np.equal(end, q_end), np.less(st, q_st))
