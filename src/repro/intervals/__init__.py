"""Columnar interval collections and query batches.

This package provides the foundational data model of the reproduction:

* :class:`~repro.intervals.collection.IntervalCollection` — a
  struct-of-arrays store for ``<id, st, end>`` interval records, the input
  collection ``S`` of the paper.
* :class:`~repro.intervals.batch.QueryBatch` — a batch ``Q`` of selection
  (range) queries, optionally sorted by start endpoint as required by the
  level-based and partition-based strategies.
* :mod:`~repro.intervals.relations` — interval overlap predicates
  (G-OVERLAPS and the basic Allen relationships).
"""

from repro.intervals.batch import QueryBatch
from repro.intervals.collection import IntervalCollection
from repro.intervals.io import load_intervals, save_intervals
from repro.intervals.relations import (
    g_overlaps,
    allen_equals,
    allen_contains,
    allen_contained_by,
    allen_meets,
    allen_met_by,
    allen_overlaps,
    allen_overlapped_by,
    allen_precedes,
    allen_preceded_by,
    allen_starts,
    allen_started_by,
    allen_finishes,
    allen_finished_by,
)

__all__ = [
    "IntervalCollection",
    "QueryBatch",
    "load_intervals",
    "save_intervals",
    "g_overlaps",
    "allen_equals",
    "allen_contains",
    "allen_contained_by",
    "allen_meets",
    "allen_met_by",
    "allen_overlaps",
    "allen_overlapped_by",
    "allen_precedes",
    "allen_preceded_by",
    "allen_starts",
    "allen_started_by",
    "allen_finishes",
    "allen_finished_by",
]
