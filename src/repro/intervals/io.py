"""Loading and saving interval collections.

The real datasets of the paper ship as plain text: one interval per
line, whitespace- or comma-separated ``st end`` (optionally ``id st
end``).  These helpers read and write that format so users who *do*
hold the original files (BOOKS, WEBKIT, TAXIS, GREEND) can run every
experiment against them instead of the bundled synthetic clones.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.intervals.collection import IntervalCollection

__all__ = ["load_intervals", "save_intervals"]

PathLike = Union[str, pathlib.Path]


def load_intervals(path: PathLike, *, delimiter=None) -> IntervalCollection:
    """Read a collection from a text file.

    Each non-empty, non-comment (``#``) line holds either ``st end`` or
    ``id st end``.  The two layouts cannot be mixed within one file.

    Parameters
    ----------
    path:
        Input file.
    delimiter:
        Field separator; default: any whitespace.  Pass ``","`` for CSV.
    """
    data = np.loadtxt(
        path, dtype=np.int64, delimiter=delimiter, comments="#", ndmin=2
    )
    if data.size == 0:
        return IntervalCollection.empty()
    if data.shape[1] == 2:
        return IntervalCollection(data[:, 0], data[:, 1])
    if data.shape[1] == 3:
        return IntervalCollection(data[:, 1], data[:, 2], ids=data[:, 0])
    raise ValueError(
        f"expected 2 or 3 columns per line, found {data.shape[1]} in {path}"
    )


def save_intervals(
    collection: IntervalCollection,
    path: PathLike,
    *,
    include_ids: bool = True,
    delimiter: str = " ",
) -> None:
    """Write a collection as text, one interval per line."""
    if include_ids:
        data = np.column_stack([collection.ids, collection.st, collection.end])
    else:
        data = np.column_stack([collection.st, collection.end])
    np.savetxt(path, data, fmt="%d", delimiter=delimiter)
