"""Struct-of-arrays interval collections.

The paper models every object ``s`` in the input collection ``S`` as a
``<id, st, end>`` triple over a discrete 1D domain (closed intervals).
A pointer-heavy, object-per-interval representation is far too slow in
Python for meaningful benchmarks, so the collection is columnar: three
parallel numpy arrays.  All indexes in this repository build directly on
these arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

import numpy as np

__all__ = ["IntervalCollection", "CollectionStats"]


def _as_int64(values, name: str) -> np.ndarray:
    """Coerce *values* to a contiguous int64 array, validating the dtype."""
    arr = np.asarray(values)
    if arr.dtype.kind == "f":
        if not np.all(np.isfinite(arr)) or not np.all(arr == np.floor(arr)):
            raise ValueError(f"{name} must contain whole, finite numbers")
    elif arr.dtype.kind not in ("i", "u"):
        raise TypeError(f"{name} must be an integer array, got dtype {arr.dtype}")
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return np.ascontiguousarray(arr, dtype=np.int64)


@dataclass(frozen=True)
class CollectionStats:
    """Summary statistics of a collection, mirroring Table 2 of the paper."""

    cardinality: int
    domain_start: int
    domain_end: int
    min_duration: int
    max_duration: int
    avg_duration: float

    @property
    def domain_length(self) -> int:
        """Extent of the occupied domain (``end - start + 1`` convention)."""
        return self.domain_end - self.domain_start + 1

    @property
    def avg_duration_pct(self) -> float:
        """Average duration as a percentage of the domain length."""
        if self.domain_length == 0:
            return 0.0
        return 100.0 * self.avg_duration / self.domain_length


class IntervalCollection:
    """An immutable, columnar collection of closed integer intervals.

    Parameters
    ----------
    st, end:
        Interval endpoints; ``st[i] <= end[i]`` must hold for every record.
    ids:
        Optional object identifiers.  Default: ``0 .. n-1``.
    copy:
        Copy the input arrays (default) or adopt them as-is.

    Notes
    -----
    Intervals are *closed* on both sides, exactly as in the paper: an
    interval ``[st, end]`` contains every integer ``x`` with
    ``st <= x <= end``.  A unit-length interval therefore has
    ``st == end``.
    """

    __slots__ = ("_st", "_end", "_ids")

    def __init__(self, st, end, ids=None, *, copy: bool = True):
        st_arr = _as_int64(st, "st")
        end_arr = _as_int64(end, "end")
        if st_arr.shape != end_arr.shape:
            raise ValueError(
                f"st and end must have the same length "
                f"({st_arr.size} != {end_arr.size})"
            )
        if np.any(st_arr > end_arr):
            bad = int(np.argmax(st_arr > end_arr))
            raise ValueError(
                f"interval {bad} has st > end ({st_arr[bad]} > {end_arr[bad]})"
            )
        if ids is None:
            ids_arr = np.arange(st_arr.size, dtype=np.int64)
        else:
            ids_arr = _as_int64(ids, "ids")
            if ids_arr.shape != st_arr.shape:
                raise ValueError("ids must have the same length as st/end")
        if copy:
            st_arr = st_arr.copy()
            end_arr = end_arr.copy()
            ids_arr = ids_arr.copy()
        for arr in (st_arr, end_arr, ids_arr):
            arr.setflags(write=False)
        object.__setattr__(self, "_st", st_arr)
        object.__setattr__(self, "_end", end_arr)
        object.__setattr__(self, "_ids", ids_arr)

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("IntervalCollection is immutable")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_records(cls, records: Iterable[Tuple[int, int, int]]) -> "IntervalCollection":
        """Build a collection from an iterable of ``(id, st, end)`` triples."""
        rows = list(records)
        if not rows:
            return cls.empty()
        ids, st, end = zip(*rows)
        return cls(st, end, ids)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "IntervalCollection":
        """Build a collection from ``(st, end)`` pairs with sequential ids."""
        rows = list(pairs)
        if not rows:
            return cls.empty()
        st, end = zip(*rows)
        return cls(st, end)

    @classmethod
    def empty(cls) -> "IntervalCollection":
        """Return a collection with no intervals."""
        zero = np.empty(0, dtype=np.int64)
        return cls(zero, zero, zero, copy=False)

    # ------------------------------------------------------------------ #
    # column access
    # ------------------------------------------------------------------ #

    @property
    def st(self) -> np.ndarray:
        """Start endpoints (read-only int64 array)."""
        return self._st

    @property
    def end(self) -> np.ndarray:
        """End endpoints (read-only int64 array)."""
        return self._end

    @property
    def ids(self) -> np.ndarray:
        """Object identifiers (read-only int64 array)."""
        return self._ids

    @property
    def durations(self) -> np.ndarray:
        """Closed-interval durations, ``end - st + 1``."""
        return self._end - self._st + 1

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(self._st.size)

    def __iter__(self) -> Iterator[Tuple[int, int, int]]:
        for i in range(len(self)):
            yield (int(self._ids[i]), int(self._st[i]), int(self._end[i]))

    def __getitem__(self, index):
        if isinstance(index, (int, np.integer)):
            return (int(self._ids[index]), int(self._st[index]), int(self._end[index]))
        return IntervalCollection(
            self._st[index], self._end[index], self._ids[index], copy=False
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, IntervalCollection):
            return NotImplemented
        return (
            np.array_equal(self._st, other._st)
            and np.array_equal(self._end, other._end)
            and np.array_equal(self._ids, other._ids)
        )

    def __repr__(self) -> str:
        if len(self) == 0:
            return "IntervalCollection(n=0)"
        return (
            f"IntervalCollection(n={len(self)}, "
            f"domain=[{int(self._st.min())}, {int(self._end.max())}])"
        )

    # ------------------------------------------------------------------ #
    # derived views / statistics
    # ------------------------------------------------------------------ #

    def stats(self) -> CollectionStats:
        """Summary statistics in the format of Table 2 of the paper."""
        if len(self) == 0:
            return CollectionStats(0, 0, -1, 0, 0, 0.0)
        durations = self.durations
        return CollectionStats(
            cardinality=len(self),
            domain_start=int(self._st.min()),
            domain_end=int(self._end.max()),
            min_duration=int(durations.min()),
            max_duration=int(durations.max()),
            avg_duration=float(durations.mean()),
        )

    def sorted_by_start(self) -> "IntervalCollection":
        """Return a copy sorted by ``(st, end)`` (stable)."""
        order = np.lexsort((self._end, self._st))
        return self[order]

    def normalized(self, m: int) -> "IntervalCollection":
        """Rescale endpoints into the HINT domain ``[0, 2**m - 1]``.

        The paper discretizes and normalizes every interval into the
        ``[0, 2**m - 1]`` domain on insertion.  Rescaling preserves the
        relative layout; degenerate inputs (empty, or a single point
        domain) map to the origin.
        """
        if m < 0:
            raise ValueError("m must be non-negative")
        if len(self) == 0:
            return self
        lo = int(self._st.min())
        hi = int(self._end.max())
        target_hi = (1 << m) - 1
        span = hi - lo
        if span == 0:
            zero = np.zeros(len(self), dtype=np.int64)
            return IntervalCollection(zero, zero, self._ids, copy=False)
        st = (self._st - lo).astype(np.float64) * (target_hi / span)
        end = (self._end - lo).astype(np.float64) * (target_hi / span)
        st_i = np.floor(st).astype(np.int64)
        end_i = np.floor(end).astype(np.int64)
        np.maximum(end_i, st_i, out=end_i)
        return IntervalCollection(st_i, end_i, self._ids, copy=False)

    def select(self, mask: np.ndarray) -> "IntervalCollection":
        """Return the sub-collection where *mask* is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self._st.shape:
            raise ValueError("mask must match the collection length")
        return self[mask]

    def concat(self, other: "IntervalCollection") -> "IntervalCollection":
        """Concatenate two collections (ids are preserved, not checked)."""
        return IntervalCollection(
            np.concatenate([self._st, other._st]),
            np.concatenate([self._end, other._end]),
            np.concatenate([self._ids, other._ids]),
            copy=False,
        )
