"""Query batches.

A *batch* ``Q`` is the unit of work of every strategy in the paper: a set
of selection (range) queries received together.  The level-based and
partition-based strategies require the batch to be examined in increasing
order of the query start endpoint; :meth:`QueryBatch.sorted_by_start`
produces that ordering while remembering the permutation, so results can
be reported in the caller's original order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.intervals.collection import _as_int64

__all__ = ["QueryBatch"]


class QueryBatch:
    """An immutable batch of selection queries ``[q.st, q.end]``.

    Parameters
    ----------
    st, end:
        Query endpoints, ``st[i] <= end[i]``.
    order:
        Mapping from the batch's positions to the caller's original
        positions.  Used internally by :meth:`sorted_by_start`; callers
        normally never pass it.
    """

    __slots__ = ("_st", "_end", "_order")

    def __init__(self, st, end, *, order=None):
        st_arr = _as_int64(st, "st")
        end_arr = _as_int64(end, "end")
        if st_arr.shape != end_arr.shape:
            raise ValueError("query st and end must have the same length")
        if np.any(st_arr > end_arr):
            bad = int(np.argmax(st_arr > end_arr))
            raise ValueError(
                f"query {bad} has st > end ({st_arr[bad]} > {end_arr[bad]})"
            )
        if order is None:
            order_arr = np.arange(st_arr.size, dtype=np.int64)
        else:
            order_arr = _as_int64(order, "order")
            if order_arr.shape != st_arr.shape:
                raise ValueError("order must have the same length as st/end")
        for arr in (st_arr, end_arr, order_arr):
            arr.setflags(write=False)
        object.__setattr__(self, "_st", st_arr)
        object.__setattr__(self, "_end", end_arr)
        object.__setattr__(self, "_order", order_arr)

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("QueryBatch is immutable")

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "QueryBatch":
        """Build a batch from an iterable of ``(st, end)`` pairs."""
        rows = list(pairs)
        if not rows:
            zero = np.empty(0, dtype=np.int64)
            return cls(zero, zero)
        st, end = zip(*rows)
        return cls(st, end)

    @property
    def st(self) -> np.ndarray:
        """Query start endpoints (read-only)."""
        return self._st

    @property
    def end(self) -> np.ndarray:
        """Query end endpoints (read-only)."""
        return self._end

    @property
    def order(self) -> np.ndarray:
        """Original caller position of each query in this batch."""
        return self._order

    @property
    def is_sorted(self) -> bool:
        """True when queries are in non-decreasing start order."""
        return bool(np.all(self._st[:-1] <= self._st[1:]))

    def __len__(self) -> int:
        return int(self._st.size)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for i in range(len(self)):
            yield (int(self._st[i]), int(self._end[i]))

    def __getitem__(self, index) -> Tuple[int, int]:
        return (int(self._st[index]), int(self._end[index]))

    def __repr__(self) -> str:
        return f"QueryBatch(n={len(self)}, sorted={self.is_sorted})"

    def sorted_by_start(self) -> "QueryBatch":
        """Return the batch in non-decreasing start order, tracking positions.

        An already-sorted batch is returned as-is; otherwise a stable
        ``(st, end)`` sort is applied.  Only start order matters to the
        strategies.

        Sorting the batch by start endpoint is the first ingredient of
        every advanced strategy in the paper (Section 3.1): it removes
        horizontal jumps between queries on opposite sides of the index.
        """
        if self.is_sorted:
            return self
        perm = np.lexsort((self._end, self._st))
        return QueryBatch(
            self._st[perm], self._end[perm], order=self._order[perm]
        )

    def clipped(self, lo: int, hi: int) -> "QueryBatch":
        """Clamp all queries into ``[lo, hi]`` (used before probing HINT)."""
        if lo > hi:
            raise ValueError("lo must be <= hi")
        st = np.clip(self._st, lo, hi)
        end = np.clip(self._end, lo, hi)
        return QueryBatch(st, end, order=self._order)
