"""Serving layer: micro-batching of single-query traffic.

The paper evaluates pre-formed batches; a live system receives
independent queries and must *form* the batches.  This package provides
the threaded admission layer that does so:

* :class:`~repro.service.service.BatchingQueryService` — coalesces
  single queries into batches flushed by size or deadline, executes
  them with the batch strategies (optionally parallelized), applies
  bounded-queue backpressure, and supports atomic index swaps under
  live traffic;
* metrics live in :mod:`repro.analysis.service_stats` and are exposed
  on the service as ``service.metrics``.

The single-threaded, poll-driven building block remains
:class:`~repro.core.accumulator.BatchAccumulator`; this package is the
thread-safe service around the same admission policy.
"""

from repro.service.service import (
    BACKPRESSURE_POLICIES,
    BatchingQueryService,
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
)

__all__ = [
    "BatchingQueryService",
    "DeadlineExceededError",
    "QueueFullError",
    "ServiceClosedError",
    "BACKPRESSURE_POLICIES",
]
