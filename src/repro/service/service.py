"""The micro-batching query service.

:class:`BatchingQueryService` turns the paper's batch strategies into a
serving layer: many callers submit single ``(st, end)`` G-OVERLAPS
queries, the service coalesces them into a
:class:`~repro.intervals.QueryBatch`, and a background flusher executes
each batch with a strategy from
:data:`~repro.core.strategies.STRATEGIES` (or
:func:`~repro.core.parallel.parallel_batch` once batches are large
enough to be worth chunking).  Each caller receives a
:class:`concurrent.futures.Future` resolved with its own result.

Admission follows the paper's footnote 5 — a batch is closed by
whichever fires first:

* **size** — ``max_batch`` queries are staged;
* **deadline** — the oldest staged query has waited ``max_delay_ms``.

The staging queue is bounded (``max_queue``); when it is full the
configured backpressure policy either **blocks** the submitting thread
until the flusher catches up or **rejects** the query with
:class:`QueueFullError` — the two standard answers of an admission
queue under overload.

The index is read through a single attribute reference that the flusher
snapshots once per flush, so :meth:`BatchingQueryService.swap_index` can
atomically install a freshly built index (e.g. after a
:class:`~repro.hint.dynamic.DynamicHint` rebuild) without ever blocking
query execution.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, InvalidStateError
from typing import Callable, List, Optional

import repro.obs as obs
from repro.analysis.service_stats import ServiceMetrics
from repro.core.parallel import parallel_batch, resolve_workers
from repro.core.result import MODES
from repro.core.strategies import STRATEGIES, run_strategy
from repro.intervals.batch import QueryBatch
from repro.verify.faults import (
    SITE_FLUSH,
    SITE_STRATEGY,
    SITE_SWAP,
    FaultPlan,
)

__all__ = [
    "BatchingQueryService",
    "DeadlineExceededError",
    "QueueFullError",
    "ServiceClosedError",
    "BACKPRESSURE_POLICIES",
]

#: Admission policies for a full staging queue.
BACKPRESSURE_POLICIES = ("block", "reject")

#: Most sampled trace ids one flush propagates onto its spans.
_TRACE_SCOPE_CAP = 64


class ServiceClosedError(RuntimeError):
    """Submitted to (or pending in) a service that has shut down."""


class QueueFullError(RuntimeError):
    """Rejected because the staging queue is full (``backpressure="reject"``)."""


class DeadlineExceededError(RuntimeError):
    """The query's client deadline expired before it was executed.

    Raised into the caller's future when a query submitted with a
    ``deadline`` is still staged when that deadline passes: the flusher
    drops it at batch-formation time instead of spending index work on
    an answer nobody is waiting for (deadline propagation).  Also raised
    synchronously by :meth:`BatchingQueryService.submit` when the
    deadline is already in the past at admission time.
    """


def _fail_future(future: Future, exc: BaseException) -> bool:
    """Resolve *future* with *exc* iff it is still unresolved.

    The exactly-once helper of every error path that may race another
    resolver (drain-timeout abandonment vs. the in-flight flush): a
    future that is already done (or was cancelled by its caller) is left
    untouched.  Returns whether this call resolved it.
    """
    try:
        future.set_exception(exc)
        return True
    except InvalidStateError:
        return False


class _Pending:
    """One staged query and the future its caller holds."""

    __slots__ = (
        "st", "end", "enqueued_at", "deadline", "deferred", "future", "trace"
    )

    def __init__(
        self,
        st: int,
        end: int,
        enqueued_at: float,
        deadline: Optional[float] = None,
        trace=None,
    ):
        self.st = st
        self.end = end
        self.enqueued_at = enqueued_at
        #: Absolute deadline on the service clock (None = no deadline).
        self.deadline = deadline
        #: Flushes this query has been passed over by a flush policy.
        self.deferred = 0
        #: Optional TraceContext from the submitting layer.
        self.trace = trace
        self.future: Future = Future()


class BatchingQueryService:
    """Coalesce single-query traffic into batches and execute them.

    Parameters
    ----------
    index:
        A :class:`~repro.hint.index.HintIndex` (queries are clipped into
        its domain, exactly as for the strategies).
    strategy:
        Name from :data:`~repro.core.strategies.STRATEGIES` used for
        every flush.
    mode:
        Result mode; each future resolves to the per-query view —
        ``"count"``: an ``int``; ``"ids"``: an id array; ``"checksum"``:
        a ``(count, checksum)`` pair.
    max_batch:
        Flush as soon as this many queries are staged.
    max_delay_ms:
        Flush when the oldest staged query has waited this long
        (milliseconds) — the latency bound of the admission policy.
    max_queue:
        Bound on staged queries; at most ``max_queue`` queries wait
        while a flush is in flight.
    backpressure:
        ``"block"`` (submitters wait for room) or ``"reject"``
        (:class:`QueueFullError` is raised immediately).
    parallel_threshold:
        Flushes of at least this many queries run through
        :func:`~repro.core.parallel.parallel_batch` with *workers*
        threads; ``None`` disables parallel execution.
    workers:
        Thread count for parallel flushes.  ``None`` (the default)
        resolves to ``os.cpu_count()`` (at least 1) via
        :func:`~repro.core.parallel.resolve_workers` — the same
        machine-derived convention :class:`~repro.shard.ShardedHint`
        uses for its pool.
    metrics:
        Optional externally owned :class:`ServiceMetrics` (a fresh one
        is created by default and exposed as :attr:`metrics`).
    clock:
        Monotonic time source; injectable for tests.
    flush_policy:
        Optional flush selector (e.g.
        :class:`~repro.cache.AffinityFlushPolicy`).  When set, each
        flush calls ``flush_policy.select(pending, max_batch)`` with the
        service lock held; the returned indices are staged and every
        passed-over query's ``deferred`` counter is incremented (the
        input the policy's starvation bound works from).  Selections are
        validated — duplicate/out-of-range indices or a policy exception
        fall back to plain FIFO, so a misbehaving policy can reorder
        work but never lose or duplicate a future.  ``None`` (the
        default) drains FIFO.
    fault_plan:
        Optional :class:`repro.verify.faults.FaultPlan`.  When set, the
        flusher fires the :data:`~repro.verify.faults.SITE_FLUSH` site
        at the start of every flush and the
        :data:`~repro.verify.faults.SITE_STRATEGY` site right before
        strategy execution, and :meth:`swap_index` fires
        :data:`~repro.verify.faults.SITE_SWAP` — injected exceptions
        follow the normal error path (every staged future is resolved
        with the exception, the flush counts as failed).  ``None`` (the
        default) costs nothing.

    Examples
    --------
    >>> from repro import BatchingQueryService, HintIndex, IntervalCollection
    >>> index = HintIndex(IntervalCollection.from_pairs([(2, 5), (4, 9)]), m=4)
    >>> with BatchingQueryService(index, max_batch=2, max_delay_ms=50) as svc:
    ...     futures = [svc.submit(0, 3), svc.submit(8, 12)]
    ...     [f.result(timeout=5) for f in futures]
    [1, 1]
    """

    def __init__(
        self,
        index,
        *,
        strategy: str = "partition-based",
        mode: str = "count",
        max_batch: int = 256,
        max_delay_ms: float = 5.0,
        max_queue: int = 8192,
        backpressure: str = "block",
        parallel_threshold: Optional[int] = None,
        workers: Optional[int] = None,
        metrics: Optional[ServiceMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
        flush_policy=None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if flush_policy is not None and not callable(
            getattr(flush_policy, "select", None)
        ):
            raise TypeError("flush_policy must expose select(pending, max_batch)")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; available: {sorted(STRATEGIES)}"
            )
        if mode not in MODES:
            raise ValueError(f"unknown result mode {mode!r}; expected one of {MODES}")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_delay_ms <= 0:
            raise ValueError("max_delay_ms must be positive")
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {backpressure!r}; "
                f"expected one of {BACKPRESSURE_POLICIES}"
            )
        if parallel_threshold is not None and parallel_threshold < 1:
            raise ValueError("parallel_threshold must be positive (or None)")
        workers = resolve_workers(workers)
        self._index = index
        self.strategy = strategy
        self.mode = mode
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay_ms) / 1000.0
        self.max_queue = int(max_queue)
        self.backpressure = backpressure
        self.parallel_threshold = (
            None if parallel_threshold is None else int(parallel_threshold)
        )
        self.workers = int(workers)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._clock = clock
        self.flush_policy = flush_policy
        self._fault_plan = fault_plan

        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._has_room = threading.Condition(self._lock)
        self._pending: List[_Pending] = []
        self._in_flight: List[_Pending] = []
        self._force_flush = False
        self._closing = False
        self._closed = False
        self._flusher = threading.Thread(
            target=self._run, name="repro-batch-flusher", daemon=True
        )
        self._flusher.start()

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #

    def submit(
        self,
        q_st: int,
        q_end: int,
        *,
        deadline: Optional[float] = None,
        trace=None,
    ) -> Future:
        """Stage one query; the returned future resolves after its flush.

        Applies the configured backpressure policy when the staging
        queue is full, and raises :class:`ServiceClosedError` once
        :meth:`close` has begun.

        *deadline* is an absolute instant on the service clock (the
        ``clock`` constructor argument — ``time.monotonic`` by default).
        A staged query whose deadline has passed when its flush forms a
        batch is **dropped instead of executed**: its future fails with
        :class:`DeadlineExceededError` and no index work is spent on it
        (deadline propagation — the contract the network front end in
        :mod:`repro.net` relies on).  A deadline already in the past at
        submit time raises :class:`DeadlineExceededError` synchronously.

        *trace* is an optional :class:`~repro.obs.tracecontext.
        TraceContext`; the sampled traces of a batch scope the flush
        (every span the flush records carries their trace ids), which is
        how one wire request stays attributable through batching.
        """
        if q_st > q_end:
            raise ValueError("query must have st <= end")
        now = self._clock()
        if deadline is not None and now >= deadline:
            self.metrics.record_deadline_dropped()
            raise DeadlineExceededError(
                "client deadline expired before admission"
            )
        with self._lock:
            if self._closing:
                raise ServiceClosedError("service is shut down")
            while len(self._pending) >= self.max_queue:
                if self.backpressure == "reject":
                    self.metrics.record_rejected()
                    raise QueueFullError(
                        f"staging queue is full ({self.max_queue} queries)"
                    )
                self._has_room.wait()
                if self._closing:
                    raise ServiceClosedError("service is shut down")
            item = _Pending(
                int(q_st), int(q_end), self._clock(), deadline, trace
            )
            self._pending.append(item)
            self.metrics.record_submitted(len(self._pending))
            self._has_work.notify()
            return item.future

    def flush(self) -> None:
        """Ask the flusher to execute whatever is staged right now."""
        with self._lock:
            if self._pending:
                self._force_flush = True
                self._has_work.notify()

    @property
    def queue_depth(self) -> int:
        """Number of currently staged (not yet flushed) queries."""
        with self._lock:
            return len(self._pending)

    @property
    def index(self):
        """The currently installed index."""
        return self._index

    def swap_index(self, new_index, *, close_old: bool = False):
        """Atomically install *new_index*; returns the replaced index.

        The flusher snapshots the index reference once per flush, so a
        swap never blocks (or is blocked by) query execution — the
        standard pattern for installing a
        :class:`~repro.hint.dynamic.DynamicHint` rebuild, or any index
        rebuilt offline, under live traffic.  In-flight flushes finish
        on the index they started with.

        With ``close_old=True`` the replaced backend's ``close()`` is
        called (when it has one) after the swap and the result is still
        returned.  For an installed
        :class:`~repro.engine.ExecutionEngine` this is the resource
        contract: its ``close()`` waits for the in-flight flush to
        drain, then shuts its pools down and unlinks its shared-memory
        arena — swapping an engine out can never leak a segment.
        """
        ob = obs.active()
        if ob is None:
            return self._swap_inner(new_index, close_old)
        with ob.span("service.swap_index"):
            return self._swap_inner(new_index, close_old)

    def _swap_inner(self, new_index, close_old: bool = False):
        if self._fault_plan is not None:
            # Fires before the swap: an injected failure leaves the old
            # index installed and the swap counter untouched.
            self._fault_plan.fire(SITE_SWAP)
        old, self._index = self._index, new_index
        self.metrics.record_swap()
        if close_old:
            close = getattr(old, "close", None)
            if close is not None:
                close()
        return old

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut down; with *drain* (default) all staged work still runs.

        With ``drain=False`` staged queries fail with
        :class:`ServiceClosedError` instead of executing.  Idempotent;
        blocks until the flusher exits (or *timeout* elapses).

        When *timeout* expires mid-drain, the drain is **abandoned**:
        every outstanding future — staged *and* in the flush currently
        running — fails immediately with :class:`ServiceClosedError`,
        exactly once (when the in-flight flush later completes, its
        result for an already-failed future is discarded by the
        ``InvalidStateError`` guard).  No caller is ever left holding an
        unresolved future after ``close`` returns; the network front
        end's shutdown path depends on this bound.
        """
        with self._lock:
            if not self._closing:
                self._closing = True
                if not drain:
                    abandoned = self._pending[:]
                    self._pending.clear()
                    for item in abandoned:
                        _fail_future(
                            item.future,
                            ServiceClosedError(
                                "service shut down before execution"
                            ),
                        )
                self._has_work.notify_all()
                self._has_room.notify_all()
        self._flusher.join(timeout)
        if self._flusher.is_alive():
            # Drain timed out.  Fail everything still outstanding: the
            # staged queue, and the batch the in-flight flush is holding
            # (its eventual result hits already-resolved futures and is
            # discarded — _fail_future / the InvalidStateError guard make
            # both orders exactly-once).  The flusher finishes its flush
            # on its own and then exits on the empty queue.
            with self._lock:
                abandoned = self._in_flight + self._pending
                self._in_flight = []
                self._pending.clear()
                self._has_work.notify_all()
                self._has_room.notify_all()
            for item in abandoned:
                _fail_future(
                    item.future,
                    ServiceClosedError("drain timed out; query abandoned"),
                )
        self._closed = True

    def __enter__(self) -> "BatchingQueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # flusher side
    # ------------------------------------------------------------------ #

    def _run(self) -> None:
        while True:
            with self._lock:
                reason = self._wait_for_batch()
                if reason is None:
                    return
                staged = self._select_staged()
                depth = len(self._pending)
                self._force_flush = False
                self._in_flight = staged
                self._has_room.notify_all()
            self._execute(staged, reason, depth)
            with self._lock:
                self._in_flight = []

    def _select_staged(self) -> List[_Pending]:
        """Pick and remove this flush's batch from the pending queue.

        Holds the lock (called from :meth:`_run`).  Without a policy:
        plain FIFO.  With one: the policy's selection is validated and
        applied; passed-over queries get ``deferred += 1``; any invalid
        selection or policy exception degrades to FIFO.
        """
        if self.flush_policy is None:
            staged = self._pending[: self.max_batch]
            del self._pending[: len(staged)]
            return staged
        n = len(self._pending)
        cap = min(n, self.max_batch)
        try:
            idxs = list(self.flush_policy.select(self._pending, self.max_batch))
            if len(idxs) > cap or len(set(idxs)) != len(idxs):
                raise ValueError("invalid flush selection")
            idxs = [int(i) for i in idxs]
            if any(i < 0 or i >= n for i in idxs):
                raise ValueError("flush selection index out of range")
            if not idxs:
                raise ValueError("empty flush selection")
        except Exception:
            idxs = list(range(cap))  # FIFO fallback
        chosen = set(idxs)
        staged = [self._pending[i] for i in idxs]
        rest = [p for i, p in enumerate(self._pending) if i not in chosen]
        for item in rest:
            item.deferred += 1
        self._pending[:] = rest
        return staged

    def _wait_for_batch(self) -> Optional[str]:
        """Hold the lock until a batch is due; returns the flush trigger
        (``None`` means the service is fully drained and closing)."""
        while True:
            if self._pending:
                if len(self._pending) >= self.max_batch:
                    return "size"
                if self._closing:
                    return "drain"
                if self._force_flush:
                    return "forced"
                now = self._clock()
                deadline = self._pending[0].enqueued_at + self.max_delay
                if now >= deadline:
                    return "deadline"
                self._has_work.wait(timeout=deadline - now)
            else:
                if self._closing:
                    return None
                self._has_work.wait()

    def _execute(self, staged: List[_Pending], reason: str, depth: int) -> None:
        ob = obs.active()
        if ob is None:
            return self._execute_inner(staged, reason, depth, None)
        # Scope the flush with the sampled trace ids of the batch: every
        # span recorded below (flush, engine, strategy, cache) carries
        # them, which is what stitches one wire request to the batch
        # that answered it.  Bounded so a huge batch of traced requests
        # cannot bloat each span.
        trace_ids: List[int] = []
        for q in staged:
            if q.trace is not None and q.trace.sampled:
                trace_ids.append(q.trace.trace_id)
                if len(trace_ids) >= _TRACE_SCOPE_CAP:
                    break
        with ob.recorder.trace_scope(trace_ids):
            with ob.span(
                "service.flush", reason=reason, batch_size=len(staged)
            ) as sp:
                if trace_ids:
                    sp.attrs["traces"] = len(trace_ids)
                return self._execute_inner(staged, reason, depth, sp)

    def _execute_inner(
        self, staged: List[_Pending], reason: str, depth: int, sp
    ) -> None:
        t0 = self._clock()
        use_parallel = False
        # Deadline propagation: queries whose client deadline already
        # passed are dropped at batch-formation time — their callers
        # fail with DeadlineExceededError and the strategy never sees
        # them.  The drop happens before the fault sites so an injected
        # flush failure cannot double-resolve a dropped future.
        expired: List[_Pending] = []
        if any(q.deadline is not None for q in staged):
            live: List[_Pending] = []
            for q in staged:
                if q.deadline is not None and t0 >= q.deadline:
                    expired.append(q)
                else:
                    live.append(q)
            staged = live
        if expired:
            for item in expired:
                _fail_future(
                    item.future,
                    DeadlineExceededError(
                        "client deadline expired while staged"
                    ),
                )
            self.metrics.record_deadline_dropped(len(expired))
            if sp is not None:
                sp.attrs["deadline_dropped"] = len(expired)
            if not staged:
                return
        try:
            # The whole flush body sits inside the try: whatever dies —
            # batch formation, an injected fault, the strategy itself —
            # every staged future is resolved with the exception, so no
            # caller is ever left hanging.
            if self._fault_plan is not None:
                self._fault_plan.fire(SITE_FLUSH)
            index = self._index  # one atomic snapshot per flush
            batch = QueryBatch([q.st for q in staged], [q.end for q in staged])
            use_parallel = (
                self.parallel_threshold is not None
                and len(batch) >= self.parallel_threshold
            )
            if self._fault_plan is not None:
                self._fault_plan.fire(SITE_STRATEGY)
            execute = getattr(index, "execute", None)
            if execute is not None:
                # Self-executing backend (e.g. repro.shard.ShardedHint):
                # it owns its parallelism, so the service hands the whole
                # batch over instead of chunking it here.  swap_index can
                # therefore install a sharded backend with zero call-site
                # changes.
                use_parallel = False
                result = execute(batch, strategy=self.strategy, mode=self.mode)
            elif use_parallel:
                result = parallel_batch(
                    index,
                    batch,
                    strategy=self.strategy,
                    workers=self.workers,
                    mode=self.mode,
                )
            else:
                result = run_strategy(self.strategy, index, batch, mode=self.mode)
        except BaseException as exc:  # route failures to the callers
            if sp is not None:
                sp.attrs["error"] = type(exc).__name__
            self.metrics.record_flush(
                reason,
                len(staged),
                self._clock() - t0,
                parallel=use_parallel,
                failed=True,
                queue_depth=depth,
            )
            for item in staged:
                _fail_future(item.future, exc)
            return
        latency = self._clock() - t0
        for pos, item in enumerate(staged):
            try:
                item.future.set_result(self._extract(result, pos))
            except InvalidStateError:
                # The caller cancelled (e.g. a disconnected network
                # client); the result is simply discarded.
                pass
        self.metrics.record_flush(
            reason, len(staged), latency, parallel=use_parallel, queue_depth=depth
        )

    def _extract(self, result, pos: int):
        """Per-query view of a batch result, shaped by the service mode."""
        if self.mode == "count":
            return int(result.counts[pos])
        if self.mode == "checksum":
            return (int(result.counts[pos]), result.query_checksum(pos))
        return result.ids(pos)

    def __repr__(self) -> str:
        state = "closed" if self._closing else "open"
        return (
            f"BatchingQueryService(strategy={self.strategy!r}, "
            f"mode={self.mode!r}, max_batch={self.max_batch}, "
            f"max_delay_ms={self.max_delay * 1000:g}, {state})"
        )
