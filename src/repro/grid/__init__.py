"""1D-grid interval index with batch processing.

The 1D-grid divides the domain into ``k`` disjoint, equally wide
partitions and assigns every interval to all partitions it overlaps,
split into originals (start inside) and replicas (start before) exactly
like a single HINT level.  Section 3 of the paper notes that the
partition-based batch strategy carries over to the grid, and Table 5
measures it: the grid benefits from partition-based batching but stays
roughly an order of magnitude behind partition-based HINT.

* :class:`~repro.grid.index.GridIndex` — columnar index + single query.
* :func:`~repro.grid.batch.grid_query_based` /
  :func:`~repro.grid.batch.grid_partition_based` — the two strategies of
  Table 5.
"""

from repro.grid.index import GridIndex
from repro.grid.batch import grid_query_based, grid_partition_based

__all__ = ["GridIndex", "grid_query_based", "grid_partition_based"]
