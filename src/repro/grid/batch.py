"""Batch strategies on the 1D-grid (Table 5 of the paper).

``grid_query_based`` executes queries serially; ``grid_partition_based``
applies the paper's partition-based idea to the grid's single level:
queries are sorted by start, every partition is depleted for all its
relevant queries before moving on, and queries anchored at the same
partition share vectorized probes.
"""

from __future__ import annotations

import numpy as np

from repro.core.collector import make_collector
from repro.core.result import BatchResult
from repro.grid.index import GridIndex
from repro.intervals.batch import QueryBatch

__all__ = ["grid_query_based", "grid_partition_based"]


def grid_query_based(
    grid: GridIndex,
    batch: QueryBatch,
    *,
    sort: bool = False,
    mode: str = "count",
) -> BatchResult:
    """Execute each query of the batch independently on the grid."""
    work = batch.sorted_by_start() if sort else batch
    collector = make_collector(mode, len(work))
    for pos, (q_st, q_end) in enumerate(work):
        if mode == "count":
            collector.add_count(pos, grid.query_count(q_st, q_end))
        else:
            collector.add_ids(pos, grid.query(q_st, q_end))
    return collector.finalize(work.order)


def grid_partition_based(
    grid: GridIndex,
    batch: QueryBatch,
    *,
    mode: str = "count",
) -> BatchResult:
    """Partition-at-a-time batch evaluation on the grid (with sorting)."""
    work = batch.sorted_by_start()
    n = len(work)
    collector = make_collector(mode, n)
    if n == 0:
        return collector.finalize(work.order)
    q_st = work.st
    q_end = work.end
    pf = grid.partition_of(q_st)
    pl = grid.partition_of(q_end)
    positions = np.arange(n, dtype=np.int64)

    # --- first partitions, grouped (pf is non-decreasing) --------------
    parts, starts = np.unique(pf, return_index=True)
    bounds = np.append(starts, n)
    for gi in range(parts.size):
        p = int(parts[gi])
        idx = positions[int(bounds[gi]) : int(bounds[gi + 1])]
        # originals: shared prefix probe, per-query end-mask
        lo, hi = int(grid.o_offsets[p]), int(grid.o_offsets[p + 1])
        if hi > lo:
            st_slice = grid.o_st[lo:hi]
            end_slice = grid.o_end[lo:hi]
            ks = np.searchsorted(st_slice, q_end[idx], side="right")
            for j, k in zip(idx, ks):
                if k:
                    mask = end_slice[: int(k)] >= q_st[j]
                    if collector.mode == "count":
                        collector.add_count(int(j), int(np.count_nonzero(mask)))
                    else:
                        collector.add_ids(int(j), grid.o_ids[lo : lo + int(k)][mask])
        # replicas: shared suffix probe
        lo, hi = int(grid.r_offsets[p]), int(grid.r_offsets[p + 1])
        if hi > lo:
            ks = np.searchsorted(grid.r_end[lo:hi], q_st[idx], side="left")
            if collector.mode == "count":
                collector.add_counts_vec(idx, (hi - lo) - ks)
            else:
                for j, k in zip(idx, ks):
                    if hi > lo + int(k):
                        collector.add_ids(int(j), grid.r_ids[lo + int(k) : hi])

    # --- in-between partitions: vectorized contiguous ranges ------------
    sel = pl > pf + 1
    if sel.any():
        lows = grid.o_offsets[pf[sel] + 1]
        highs = grid.o_offsets[pl[sel]]
        if collector.mode == "count":
            collector.add_counts_vec(positions[sel], highs - lows)
        else:
            for j, lo, hi in zip(positions[sel], lows, highs):
                if hi > lo:
                    collector.add_ids(int(j), grid.o_ids[int(lo) : int(hi)])

    # --- last partitions, grouped by pl ---------------------------------
    sel = np.flatnonzero(pl > pf)
    if sel.size:
        order = sel[np.argsort(pl[sel], kind="stable")]
        l_sorted = pl[order]
        group_starts = np.flatnonzero(np.r_[True, l_sorted[1:] != l_sorted[:-1]])
        group_bounds = np.append(group_starts, order.size)
        for gi in range(group_starts.size):
            g0, g1 = int(group_bounds[gi]), int(group_bounds[gi + 1])
            idx = order[g0:g1]
            p = int(l_sorted[g0])
            lo, hi = int(grid.o_offsets[p]), int(grid.o_offsets[p + 1])
            if hi <= lo:
                continue
            ks = np.searchsorted(grid.o_st[lo:hi], q_end[idx], side="right")
            if collector.mode == "count":
                collector.add_counts_vec(idx, ks)
            else:
                for j, k in zip(idx, ks):
                    if k:
                        collector.add_ids(int(j), grid.o_ids[lo : lo + int(k)])

    return collector.finalize(work.order)
