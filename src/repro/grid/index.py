"""Columnar 1D-grid index.

Storage is one flat level in the style of
:class:`repro.hint.tables.SubdivisionTable`: per partition, originals
(``start inside``, sorted by start) and replicas (``start before``,
sorted by end), flattened into partition-ordered arrays with offsets.
The single-query algorithm follows the standard grid evaluation used in
the HINT papers:

* first overlapping partition — originals and replicas, with full
  comparisons;
* in-between partitions — all originals, no comparisons (one contiguous
  slice thanks to the flattened layout);
* last partition — originals with ``s.st <= q.end``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.intervals.collection import IntervalCollection

__all__ = ["GridIndex"]

_EMPTY = np.empty(0, dtype=np.int64)


class GridIndex:
    """1D-grid over ``[domain_lo, domain_hi]`` with ``k`` partitions.

    Parameters
    ----------
    collection:
        Input intervals.
    num_partitions:
        Grid resolution ``k``; default ``~sqrt(n)`` (a standard
        rule-of-thumb balancing partition length against replication).
    domain:
        ``(lo, hi)`` to index over; default: the collection's extent.
    debug_checks:
        Run :func:`repro.verify.invariants.verify_index` over the built
        grid (structure, sortedness, coverage); intended for tests.
    """

    def __init__(
        self,
        collection: IntervalCollection,
        num_partitions: Optional[int] = None,
        *,
        domain: Optional[Tuple[int, int]] = None,
        debug_checks: bool = False,
    ):
        n = len(collection)
        if num_partitions is None:
            num_partitions = max(1, int(math.isqrt(max(n, 1))))
        if num_partitions < 1:
            raise ValueError("num_partitions must be positive")
        if domain is None:
            stats = collection.stats()
            domain = (stats.domain_start, stats.domain_end) if n else (0, 0)
        self.domain_lo, self.domain_hi = int(domain[0]), int(domain[1])
        if n and (
            int(collection.st.min()) < self.domain_lo
            or int(collection.end.max()) > self.domain_hi
        ):
            raise ValueError("collection endpoints fall outside the domain")
        self.k = int(num_partitions)
        self.width = max(1, math.ceil((self.domain_hi - self.domain_lo + 1) / self.k))
        self.num_intervals = n
        self.debug_checks = bool(debug_checks)
        self._build(collection)
        if self.debug_checks:
            # Imported here: repro.verify depends on this module.
            from repro.verify.invariants import verify_index

            verify_index(self, collection=collection)

    # ------------------------------------------------------------------ #

    def partition_of(self, value) -> np.ndarray:
        """Partition index containing *value* (vectorized, clamped)."""
        p = (np.asarray(value) - self.domain_lo) // self.width
        return np.clip(p, 0, self.k - 1)

    def _build(self, coll: IntervalCollection) -> None:
        k = self.k
        if len(coll) == 0:
            self.o_offsets = np.zeros(k + 1, dtype=np.int64)
            self.o_ids = self.o_st = self.o_end = _EMPTY
            self.r_offsets = np.zeros(k + 1, dtype=np.int64)
            self.r_ids = self.r_st = self.r_end = _EMPTY
            return
        first = self.partition_of(coll.st)
        last = self.partition_of(coll.end)

        # Expand placements; replica placements are every partition after
        # the first.
        span = last - first + 1
        rows_chunks: List[np.ndarray] = []
        part_chunks: List[np.ndarray] = []
        for j in range(int(span.max())):
            sel = span > j
            rows_chunks.append(np.flatnonzero(sel))
            part_chunks.append(first[sel] + j)
        rows = np.concatenate(rows_chunks)
        parts = np.concatenate(part_chunks)
        original = self.partition_of(coll.st[rows]) == parts

        def flatten(sel_rows, sel_parts, sort_key):
            order = np.lexsort((sort_key, sel_parts))
            sel_rows = sel_rows[order]
            sel_parts = sel_parts[order]
            offsets = np.zeros(k + 1, dtype=np.int64)
            np.cumsum(np.bincount(sel_parts, minlength=k), out=offsets[1:])
            return (
                offsets,
                np.ascontiguousarray(coll.ids[sel_rows]),
                np.ascontiguousarray(coll.st[sel_rows]),
                np.ascontiguousarray(coll.end[sel_rows]),
            )

        o_rows, o_parts = rows[original], parts[original]
        r_rows, r_parts = rows[~original], parts[~original]
        self.o_offsets, self.o_ids, self.o_st, self.o_end = flatten(
            o_rows, o_parts, coll.st[o_rows]
        )
        self.r_offsets, self.r_ids, self.r_st, self.r_end = flatten(
            r_rows, r_parts, coll.end[r_rows]
        )

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.num_intervals

    def __repr__(self) -> str:
        return (
            f"GridIndex(k={self.k}, n={self.num_intervals}, "
            f"placements={self.num_placements()})"
        )

    def num_placements(self) -> int:
        """Total placements including replication."""
        return int(self.o_ids.size + self.r_ids.size)

    def replication_factor(self) -> float:
        """Average number of partitions an interval is stored in."""
        if self.num_intervals == 0:
            return 0.0
        return self.num_placements() / self.num_intervals

    def nbytes(self) -> int:
        """Approximate memory footprint of the grid tables."""
        arrays = (
            self.o_offsets, self.o_ids, self.o_st, self.o_end,
            self.r_offsets, self.r_ids, self.r_st, self.r_end,
        )
        return sum(a.nbytes for a in arrays)

    # ------------------------------------------------------------------ #

    def query(self, q_st: int, q_end: int) -> np.ndarray:
        """Ids of all intervals G-overlapping ``[q_st, q_end]``."""
        pieces: List[np.ndarray] = []
        self._run_single(q_st, q_end, pieces.append, None)
        if not pieces:
            return _EMPTY
        return np.concatenate(pieces)

    def query_count(self, q_st: int, q_end: int) -> int:
        """Number of intervals G-overlapping ``[q_st, q_end]``."""
        total = 0

        def on_count(v: int) -> None:
            nonlocal total
            total += v

        self._run_single(q_st, q_end, None, on_count)
        return total

    def _run_single(self, q_st, q_end, emit_ids, emit_count) -> None:
        if q_st > q_end:
            raise ValueError("query must have st <= end")
        pf = int(self.partition_of(q_st))
        pl = int(self.partition_of(q_end))
        count_only = emit_ids is None

        # --- first partition: originals (both tests) + replicas --------
        lo, hi = int(self.o_offsets[pf]), int(self.o_offsets[pf + 1])
        if hi > lo:
            k = int(np.searchsorted(self.o_st[lo:hi], q_end, side="right"))
            if k:
                mask = self.o_end[lo : lo + k] >= q_st
                if count_only:
                    emit_count(int(np.count_nonzero(mask)))
                else:
                    emit_ids(self.o_ids[lo : lo + k][mask])
        lo, hi = int(self.r_offsets[pf]), int(self.r_offsets[pf + 1])
        if hi > lo:
            k = int(np.searchsorted(self.r_end[lo:hi], q_st, side="left"))
            if count_only:
                emit_count(hi - (lo + k))
            elif hi > lo + k:
                emit_ids(self.r_ids[lo + k : hi])

        if pl > pf:
            # --- in-between partitions: all originals, one slice -------
            if pl > pf + 1:
                lo, hi = int(self.o_offsets[pf + 1]), int(self.o_offsets[pl])
                if hi > lo:
                    if count_only:
                        emit_count(hi - lo)
                    else:
                        emit_ids(self.o_ids[lo:hi])
            # --- last partition: originals with s.st <= q.end ----------
            lo, hi = int(self.o_offsets[pl]), int(self.o_offsets[pl + 1])
            if hi > lo:
                k = int(np.searchsorted(self.o_st[lo:hi], q_end, side="right"))
                if k:
                    if count_only:
                        emit_count(k)
                    else:
                        emit_ids(self.o_ids[lo : lo + k])
