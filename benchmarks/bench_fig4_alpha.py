"""Figure 4 — total time vs interval-length skew alpha (synthetic).

Growing alpha shortens intervals (they sink to the bottom levels and
result sets shrink), so all strategies get faster — the paper's
downward-sloping alpha plot.
"""

import pytest

from conftest import synthetic_setup
from repro.core.strategies import run_strategy
from repro.workloads.queries import data_following_queries

ALPHAS = (1.01, 1.2, 1.8)


@pytest.mark.parametrize("alpha", ALPHAS)
@pytest.mark.parametrize("strategy", ("query-based", "partition-based"))
def test_bench_alpha(benchmark, alpha, strategy):
    index, coll, domain = synthetic_setup(alpha=alpha)
    batch = data_following_queries(1_000, coll, 0.1, domain=domain, seed=4)
    benchmark.group = "fig4-alpha"
    benchmark.name = f"{strategy}@a={alpha}"
    benchmark(run_strategy, strategy, index, batch, mode="checksum")
