"""Adaptive planner vs every static plan — the PR's acceptance gate.

Sweeps three workload shapes on the repository's synthetic defaults
(scaled to bench size) and records ``results/planner.csv``:

* two **homogeneous** rows (all-narrow, all-wide) where a single static
  plan is optimal — the adaptive planner must match the best static
  plan within a noise margin (it converges to the same plan, so any
  gap is measurement noise plus one decide() call);
* one **mixed-extent** row (7/8 narrow point lookups + 1/8 wide scans)
  where *no* single plan is optimal — the adaptive planner must beat
  **every** static plan strictly, which it can only do by splitting the
  batch at an extent threshold and routing each side separately
  (``docs/planning.md``).

The adaptive leg runs under the observability plane; the
``repro_planner_cost_error`` histogram accumulated over the sweep is
written to ``results/planner-cost-error.csv`` (the calibration quality
evidence referenced from ``docs/planning.md``), and the calibration
itself persists at ``results/planner-calibration.json``.

Run standalone to (re)record the CSVs::

    PYTHONPATH=src python benchmarks/bench_planner.py

Exits non-zero when a gate fails.  ``--quick`` shrinks the scenario for
CI smoke use; gates still apply.
"""

from __future__ import annotations

import argparse
import csv
import os
import pathlib
import sys
import time

DEFAULT_CARDINALITY = 100_000
DEFAULT_M = 16
DEFAULT_ALPHA = 1.8
DEFAULT_SEED = 7
DEFAULT_REPS = 5
DEFAULT_NOISE = 0.15
DEFAULT_BUDGET_S = 0.5

FIELDS = (
    "workload",
    "mode",
    "plan",
    "chosen",
    "queries",
    "median_ms",
    "best_static_ms",
    "gate",
    "cardinality",
    "m",
    "cpu_count",
)


def _median_ms(fn, reps: int) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2] * 1e3


def _workloads(rng, domain: int, scale: int):
    """(name, mode, batch) rows; *scale* divides query counts for --quick."""
    import numpy as np

    from repro.intervals.batch import QueryBatch

    narrow = max(domain // 10_000, 1)
    wide = domain // 20

    def uniform(n, extent):
        st = rng.integers(0, domain - extent - 1, n)
        return QueryBatch(st, st + extent)

    def mixed(n_narrow, n_wide, e_narrow, e_wide):
        st1 = rng.integers(0, domain - e_narrow - 1, n_narrow)
        st2 = rng.integers(0, domain - e_wide - 1, n_wide)
        st = np.concatenate([st1, st2])
        end = np.concatenate([st1 + e_narrow, st2 + e_wide])
        perm = rng.permutation(st.size)
        return QueryBatch(st[perm], end[perm])

    return [
        ("homogeneous-narrow", "count", uniform(2048 // scale, narrow)),
        ("homogeneous-narrow", "ids", uniform(2048 // scale, narrow)),
        ("homogeneous-wide", "count", uniform(2048 // scale, wide)),
        # 1/8 of the batch are 10%-of-domain scans: narrow queries want
        # the compiled kernel's near-zero per-query cost, wide scans the
        # interpreter's cheaper per-extent materialization — no single
        # plan serves both (see docs/planning.md).
        (
            "mixed-extent",
            "ids",
            mixed(7168 // scale, 1024 // scale, narrow, domain // 10),
        ),
    ]


def run(args) -> list:
    import numpy as np

    import repro.obs as obs
    from repro.engine import ExecutionEngine
    from repro.hint.index import HintIndex
    from repro.planner import PlannedExecutor
    from repro.planner.plan import BackendCaps, plan_space
    from repro.workloads import generate_synthetic

    scale = 4 if args.quick else 1
    cardinality = args.cardinality // scale
    domain = 1 << args.m
    coll = generate_synthetic(
        cardinality, domain, args.alpha, domain // 100, seed=args.seed
    ).normalized(args.m)
    index = HintIndex(coll, m=args.m)
    index.precompute_aux()
    rng = np.random.default_rng(args.seed + 4)

    engine = ExecutionEngine(index, backend="auto-static")
    statics = plan_space(BackendCaps.from_index(index, workers=engine.workers))

    obs.configure(enabled=True)
    adaptive = PlannedExecutor(
        index,
        engine=engine,
        model_path=args.calibration,
        calibrate=True,
        reuse_calibration=not args.recalibrate,
        calibration_budget_s=args.budget,
    )
    print(
        f"calibrated plans: {len(adaptive.planner.model.keys())} "
        f"-> {args.calibration}",
        flush=True,
    )

    rows = []
    failures = []
    for workload, mode, batch in _workloads(rng, domain, scale):
        static_ms = {}
        for plan in statics:
            fn = lambda p=plan: engine.execute(  # noqa: E731
                batch, strategy=p.strategy, mode=mode, backend=p.backend
            )
            fn()  # warm-up (first-call caches are not steady state)
            static_ms[plan.key(mode)] = _median_ms(fn, args.reps)
        best_static = min(static_ms.values())

        adaptive.execute(batch, mode=mode)  # warm-up + first feedback
        adaptive_ms = _median_ms(
            lambda: adaptive.execute(batch, mode=mode), args.reps
        )
        decision = adaptive.last_decision
        chosen = decision.describe() if decision is not None else "?"

        if workload.startswith("homogeneous"):
            ok = adaptive_ms <= best_static * (1.0 + args.noise)
            gate = "within-noise-of-best-static"
        else:
            ok = all(adaptive_ms < ms for ms in static_ms.values())
            gate = "strictly-beats-every-static"
        status = "pass" if ok else "FAIL"
        if not ok:
            failures.append((workload, mode, adaptive_ms, static_ms))

        common = dict(
            workload=workload,
            mode=mode,
            queries=len(batch),
            best_static_ms=round(best_static, 3),
            cardinality=cardinality,
            m=args.m,
            cpu_count=os.cpu_count() or 1,
        )
        for key, ms in sorted(static_ms.items()):
            rows.append(
                dict(common, plan=key, chosen="", median_ms=round(ms, 3), gate="")
            )
        rows.append(
            dict(
                common,
                plan="adaptive",
                chosen=chosen,
                median_ms=round(adaptive_ms, 3),
                gate=f"{gate}:{status}",
            )
        )
        print(
            f"{workload:20s} {mode:8s} adaptive {adaptive_ms:9.2f} ms  "
            f"best static {best_static:9.2f} ms  [{status}]  {chosen}",
            flush=True,
        )

    _write_cost_error(args.cost_error_out)
    adaptive.close()
    obs.configure(enabled=False)

    if failures:
        for workload, mode, ms, static_ms in failures:
            print(
                f"GATE FAILED: {workload}/{mode}: adaptive {ms:.2f} ms vs "
                + ", ".join(f"{k}={v:.2f}" for k, v in sorted(static_ms.items())),
                file=sys.stderr,
            )
    return rows if not failures else None


def _write_cost_error(path: str) -> None:
    """Dump the accumulated cost-error histogram (docs/planning.md)."""
    import repro.obs as obs

    snap = obs.snapshot()
    for hist in snap["metrics"]["histograms"]:
        if hist["name"] != obs.PLANNER_COST_ERROR:
            continue
        bounds = [str(b) for b in hist["buckets"]] + ["+Inf"]
        out = pathlib.Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        with out.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(("le", "count"))
            writer.writerows(zip(bounds, hist["counts"]))
            writer.writerow(("sum", hist["sum"]))
            writer.writerow(("count", hist["count"]))
        print(
            f"cost-error histogram ({hist['count']} observations) -> {path}",
            flush=True,
        )
        return


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cardinality", type=int, default=DEFAULT_CARDINALITY)
    parser.add_argument("--m", type=int, default=DEFAULT_M)
    parser.add_argument("--alpha", type=float, default=DEFAULT_ALPHA)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS)
    parser.add_argument(
        "--noise",
        type=float,
        default=DEFAULT_NOISE,
        help="homogeneous gate margin over the best static plan",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=DEFAULT_BUDGET_S,
        help="calibration budget in seconds (bench startup is not latency-"
        "sensitive, so it affords more than the 0.12 s serving default)",
    )
    parser.add_argument("--out", default="results/planner.csv")
    parser.add_argument(
        "--calibration", default="results/planner-calibration.json"
    )
    parser.add_argument(
        "--cost-error-out", default="results/planner-cost-error.csv"
    )
    parser.add_argument("--recalibrate", action="store_true")
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down CI smoke variant"
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
    rows = run(args)
    if rows is None:
        return 1
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=FIELDS)
        writer.writeheader()
        writer.writerows(rows)
    print(f"wrote {len(rows)} rows -> {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
