"""Ablation A5 — value of HINT's Section 2 optimizations.

Serial batches against every subdivisions/sorting combination plus the
production index under both traversal orders.  C++ expectation:
subs+sort bottom-up wins.  Python finding (recorded in EXPERIMENTS.md):
the plain P_O/P_R layout can win serial workloads here because fewer
tables mean fewer per-partition numpy calls — the trade-off is
substrate-dependent, which is itself worth measuring.
"""

import pytest

from repro.hint.index import HintIndex
from repro.hint.variants import HintVariant
from repro.workloads.queries import uniform_queries
from repro.workloads.realistic import REAL_DATASET_SPECS, make_realistic_clone

CONFIGS = [
    ("subs+sort", {"subdivisions": True, "sorted_partitions": True}),
    ("subs", {"subdivisions": True, "sorted_partitions": False}),
    ("sort", {"subdivisions": False, "sorted_partitions": True}),
    ("plain", {"subdivisions": False, "sorted_partitions": False}),
]


@pytest.fixture(scope="module")
def setup():
    spec = REAL_DATASET_SPECS["TAXIS"]
    coll = make_realistic_clone("TAXIS", cardinality=80_000, seed=1).normalized(
        spec.paper_m
    )
    batch = uniform_queries(500, 1 << spec.paper_m, 0.1, seed=2)
    return coll, spec.paper_m, batch


@pytest.mark.parametrize("name,config", CONFIGS)
def test_bench_variant(benchmark, setup, name, config):
    coll, m, batch = setup
    variant = HintVariant(coll, m, **config)
    benchmark.group = "ablation-optimizations"
    benchmark.name = f"variant-{name}"
    benchmark(variant.batch_query_based, batch)


@pytest.mark.parametrize("top_down", (False, True))
def test_bench_traversal(benchmark, setup, top_down):
    coll, m, batch = setup
    index = HintIndex(coll, m=m)
    benchmark.group = "ablation-optimizations"
    benchmark.name = "production-top-down" if top_down else "production-bottom-up"

    def run():
        for q_st, q_end in batch:
            index.query_count(q_st, q_end, top_down=top_down)

    benchmark(run)
