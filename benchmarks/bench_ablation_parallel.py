"""Ablation A4 — multi-core batch processing (the paper's future work).

Parallelizes each strategy over a thread pool and compares against its
sequential run.  numpy's ``searchsorted``/gather kernels release the
GIL, so the per-query-dominated strategies (query-based, level-based)
can overlap; the fully vectorized partition-based count path is already
one numpy pipeline and gains little — which is itself a finding.
"""

import pytest

from repro.core.parallel import parallel_batch
from repro.core.strategies import run_strategy

STRATEGIES = ("query-based", "level-based", "partition-based")


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_bench_sequential(benchmark, real_setup, real_batches, strategy):
    index, _, _ = real_setup["TAXIS"]
    batch = real_batches["TAXIS"]
    benchmark.group = f"ablation-parallel-{strategy}"
    benchmark.name = "sequential"
    benchmark(run_strategy, strategy, index, batch)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("workers", (2, 4))
def test_bench_parallel(benchmark, real_setup, real_batches, strategy, workers):
    index, _, _ = real_setup["TAXIS"]
    batch = real_batches["TAXIS"]
    benchmark.group = f"ablation-parallel-{strategy}"
    benchmark.name = f"{workers}-threads"
    result = benchmark(
        parallel_batch, index, batch, strategy=strategy, workers=workers
    )
    sequential = run_strategy(strategy, index, batch)
    assert (result.counts == sequential.counts).all()
