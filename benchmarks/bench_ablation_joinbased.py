"""Ablation A3 — join-based (optFS) evaluation vs partition-based HINT.

Both sides materialize full results (count-only joins admit a
closed-form shortcut that sidesteps the paper's trade-off).  The
paper's Section 1 claim asserted here: at batch sizes far below the
collection size, the index-based batch strategy wins.
"""

import pytest

from conftest import synthetic_setup
from repro.core.join_based import join_based
from repro.core.strategies import partition_based
from repro.experiments.runner import time_call
from repro.workloads.queries import uniform_queries

BATCH_SIZES = (100, 1_000, 5_000)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_bench_join_based(benchmark, batch_size):
    _, coll, domain = synthetic_setup()
    batch = uniform_queries(batch_size, domain, 0.05, seed=5)
    benchmark.group = f"ablation-join-batch{batch_size}"
    benchmark.name = "join-based(optFS)"
    benchmark(join_based, coll, batch, mode="ids")


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_bench_partition_based(benchmark, batch_size):
    index, _, domain = synthetic_setup()
    batch = uniform_queries(batch_size, domain, 0.05, seed=5)
    benchmark.group = f"ablation-join-batch{batch_size}"
    benchmark.name = "partition-based"
    benchmark(partition_based, index, batch, mode="ids")


def test_index_batching_beats_join_at_small_batches():
    index, coll, domain = synthetic_setup()
    batch = uniform_queries(1_000, domain, 0.05, seed=5)
    t_join = time_call(join_based, coll, batch, mode="ids", repeats=2)
    t_pb = time_call(partition_based, index, batch, mode="ids", repeats=2)
    assert t_pb < t_join, (
        f"partition-based ({t_pb:.3f}s) should beat join-based "
        f"({t_join:.3f}s) at |Q| << |S|"
    )
