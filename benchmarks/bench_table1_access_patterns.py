"""Table 1 — access patterns of the running example.

The artifact itself is deterministic (and asserted to match the paper
verbatim); the benchmark times the traced reference execution that
produces it, per strategy.
"""

import pytest

from repro.analysis.trace import AccessRecorder
from repro.experiments.table1 import (
    RUNNING_EXAMPLE_M,
    RUNNING_EXAMPLE_QUERIES,
    access_patterns,
)
from repro.hint.reference import ReferenceHint
from repro.intervals.batch import QueryBatch
from repro.intervals.collection import IntervalCollection

STRATEGIES = [
    ("query-based", "batch_query_based", {"sort": False}),
    ("query-based-sorted", "batch_query_based", {"sort": True}),
    ("level-based", "batch_level_based", {}),
    ("partition-based", "batch_partition_based", {}),
]


def test_table1_matches_paper():
    """Regenerating Table 1 must reproduce the paper's rows exactly
    (the full transcription lives in tests/test_trace.py)."""
    patterns = access_patterns()
    assert patterns["query-based"][:4] == [(4, 2), (4, 3), (4, 4), (4, 5)]
    assert patterns["partition-based-sorted"][2:6] == [
        (4, 4), (4, 4), (4, 5), (4, 5),
    ]
    multiset = sorted(patterns["query-based"])
    for sequence in patterns.values():
        assert sorted(sequence) == multiset


@pytest.mark.parametrize("name,method,kwargs", STRATEGIES)
def test_bench_traced_run(benchmark, name, method, kwargs):
    ref = ReferenceHint(IntervalCollection.empty(), m=RUNNING_EXAMPLE_M)
    batch = QueryBatch(
        [q[0] for q in RUNNING_EXAMPLE_QUERIES],
        [q[1] for q in RUNNING_EXAMPLE_QUERIES],
    )
    benchmark.group = "table1-trace"
    benchmark.name = name

    def run():
        recorder = AccessRecorder()
        getattr(ref, method)(batch, recorder=recorder, **kwargs)
        return len(recorder)

    assert benchmark(run) == 28  # Table 1 has 28 accesses per strategy
