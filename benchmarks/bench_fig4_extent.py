"""Figure 4 — total time vs query extent (synthetic).

Wider queries are less selective; every strategy slows down with the
extent and partition-based stays fastest.
"""

import pytest

from conftest import synthetic_setup
from repro.core.strategies import STRATEGIES, run_strategy
from repro.workloads.queries import data_following_queries

EXTENTS = (0.01, 0.1, 1.0)


@pytest.mark.parametrize("extent_pct", EXTENTS)
@pytest.mark.parametrize("strategy", ("query-based", "partition-based"))
def test_bench_extent(benchmark, extent_pct, strategy):
    index, coll, domain = synthetic_setup()
    batch = data_following_queries(1_000, coll, extent_pct, domain=domain, seed=4)
    benchmark.group = "fig4-extent"
    benchmark.name = f"{strategy}@{extent_pct}%"
    benchmark(run_strategy, strategy, index, batch, mode="checksum")


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_bench_all_strategies_default(benchmark, synth_default, synth_default_batch, strategy):
    index, _, _ = synth_default
    benchmark.group = "fig4-extent-default-all-strategies"
    benchmark.name = strategy
    benchmark(run_strategy, strategy, index, synth_default_batch, mode="checksum")
