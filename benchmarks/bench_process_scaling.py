"""Backend scaling of :class:`repro.engine.ExecutionEngine`.

Sweeps the execution backends (``serial`` / ``threads`` / ``processes``
/ ``compiled`` / ``threads+compiled`` / ``auto``) over worker counts,
strategies, and result modes on the repository's default synthetic
workload, and separately measures the shared-memory arena's one-time
costs (pack in the parent, attach in a worker) so their amortization
over batches is visible next to the steady-state numbers.

The compiled rows also record which kernel backend served them
(``kernel_backend`` column): ``numba`` for the JIT, ``numpy`` for the
behaviour-identical fallback.  On a fallback-only host the compiled
rows measure the plan-then-gather pipeline without nogil code — the
threads+compiled vs processes comparison on GIL-bound (ids-mode) work
is only meaningful with the JIT present and ``cpu_count`` > 1.

Run standalone to (re)record ``results/process-scaling.csv``::

    PYTHONPATH=src python benchmarks/bench_process_scaling.py

Each row records the median batch latency over ``--reps`` runs, the
derived queries/second, and the speedup against the serial baseline of
the same (strategy, mode).  Results are machine-dependent and honest:
on a single-core host (as in this repository's CI container) process
workers cannot beat the serial baseline — the interesting columns
there are the dispatch overhead (processes vs serial at workers=1) and
the arena amortization; the GIL-bypass speedups the engine exists for
need ``cpu_count`` > 1 (see ``docs/parallelism.md``).
"""

from __future__ import annotations

import argparse
import csv
import os
import pathlib
import sys
import time

DEFAULT_CARDINALITY = 60_000
DEFAULT_DOMAIN = 128_000_000
DEFAULT_ALPHA = 1.2
DEFAULT_SIGMA = 1_000_000
DEFAULT_M = 16
DEFAULT_QUERIES = 16_384
DEFAULT_EXTENT_PCT = 0.1
DEFAULT_WORKERS = (1, 2, 4, 8)
DEFAULT_REPS = 5
DEFAULT_STRATEGIES = ("partition-based", "query-based")
DEFAULT_MODES = ("count", "ids")

FIELDS = (
    "backend",
    "strategy",
    "mode",
    "workers",
    "cardinality",
    "m",
    "queries",
    "extent_pct",
    "cpu_count",
    "median_ms",
    "throughput_qps",
    "speedup_vs_serial",
    "arena_bytes",
    "arena_pack_ms",
    "arena_attach_ms",
    "arena_amortize_batches",
    "kernel_backend",
)


def _median_seconds(fn, reps: int) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]


def _measure_arena(index, reps: int) -> dict:
    """One-time arena costs: pack (parent) and attach (worker side)."""
    from repro.engine import SharedIndexArena, attach_index

    t0 = time.perf_counter()
    arena = SharedIndexArena(index)
    pack_s = time.perf_counter() - t0
    attach_times = []
    try:
        for _ in range(max(reps, 3)):
            t0 = time.perf_counter()
            attached, shm = attach_index(arena.manifest)
            attach_times.append(time.perf_counter() - t0)
            del attached
            shm.close()
    finally:
        nbytes = arena.nbytes
        arena.close()
    attach_times.sort()
    return {
        "arena_bytes": nbytes,
        "arena_pack_ms": round(pack_s * 1e3, 3),
        "arena_attach_ms": round(attach_times[len(attach_times) // 2] * 1e3, 3),
    }


def run(args) -> list:
    from repro import HintIndex
    from repro.engine import ExecutionEngine
    from repro.kernels import ops as kernel_ops

    from repro.workloads import generate_synthetic
    from repro.workloads.queries import data_following_queries

    coll = generate_synthetic(
        args.cardinality, args.domain, args.alpha, args.sigma, seed=args.seed
    ).normalized(args.m)
    batch = data_following_queries(
        args.queries, coll, args.extent, domain=1 << args.m, seed=args.seed + 1
    )
    index = HintIndex(coll, m=args.m, precompute_aux=True)
    cpus = os.cpu_count() or 1
    arena_info = _measure_arena(index, args.reps)
    kernel_backend = kernel_ops.kernel_backend()
    kernel_ops.warmup()  # JIT compile outside the timed region
    print(
        f"arena: {arena_info['arena_bytes'] / 1e6:.1f} MB, "
        f"pack {arena_info['arena_pack_ms']:.1f} ms, "
        f"attach {arena_info['arena_attach_ms']:.2f} ms  (cpu_count={cpus}, "
        f"kernels={kernel_backend}, "
        f"compile {kernel_ops.compile_seconds() * 1e3:.0f} ms)"
    )

    rows = []
    for strategy in args.strategies:
        for mode in args.modes:
            base = {
                "strategy": strategy,
                "mode": mode,
                "cardinality": args.cardinality,
                "m": args.m,
                "queries": len(batch),
                "extent_pct": args.extent,
                "cpu_count": cpus,
                "arena_bytes": "",
                "arena_pack_ms": "",
                "arena_attach_ms": "",
                "arena_amortize_batches": "",
                "kernel_backend": "",
            }
            with ExecutionEngine(index, backend="serial") as engine:
                t_serial = _median_seconds(
                    lambda: engine.execute(batch, strategy=strategy, mode=mode),
                    args.reps,
                )
            rows.append(
                dict(
                    base,
                    backend="serial",
                    workers="",
                    median_ms=round(t_serial * 1e3, 3),
                    throughput_qps=round(len(batch) / t_serial),
                    speedup_vs_serial=1.0,
                )
            )
            print(f"{strategy:>17}/{mode:<8} serial        {t_serial * 1e3:8.1f} ms")
            for backend in (
                "threads",
                "processes",
                "compiled",
                "threads+compiled",
                "auto",
            ):
                for workers in args.workers:
                    if (
                        backend in ("auto", "compiled")
                        and workers != args.workers[0]
                    ):
                        continue  # workerless backends; one row each
                    with ExecutionEngine(
                        index, backend=backend, workers=workers
                    ) as engine:
                        t = _median_seconds(
                            lambda: engine.execute(
                                batch, strategy=strategy, mode=mode
                            ),
                            args.reps,
                        )
                    row = dict(
                        base,
                        backend=backend,
                        workers="" if backend == "compiled" else workers,
                        median_ms=round(t * 1e3, 3),
                        throughput_qps=round(len(batch) / t),
                        speedup_vs_serial=round(t_serial / t, 3),
                    )
                    if "compiled" in backend:
                        row["kernel_backend"] = kernel_backend
                    if backend == "processes":
                        # batches needed before the one-time pack+attach
                        # overhead is recouped (only meaningful when the
                        # process backend is actually faster per batch).
                        row.update(arena_info)
                        setup_s = (
                            arena_info["arena_pack_ms"]
                            + arena_info["arena_attach_ms"]
                        ) / 1e3
                        gain = t_serial - t
                        row["arena_amortize_batches"] = (
                            round(setup_s / gain, 1) if gain > 0 else "inf"
                        )
                    rows.append(row)
                    print(
                        f"{strategy:>17}/{mode:<8} {backend:<9} w={workers:<2} "
                        f"{t * 1e3:8.1f} ms   {t_serial / t:5.2f}x"
                    )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cardinality", type=int, default=DEFAULT_CARDINALITY)
    parser.add_argument("--domain", type=int, default=DEFAULT_DOMAIN)
    parser.add_argument("--alpha", type=float, default=DEFAULT_ALPHA)
    parser.add_argument("--sigma", type=float, default=DEFAULT_SIGMA)
    parser.add_argument("--m", type=int, default=DEFAULT_M)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument(
        "--extent", type=float, default=DEFAULT_EXTENT_PCT,
        help="query extent as percent of the domain",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=list(DEFAULT_WORKERS),
        help="worker counts to measure for threads/processes",
    )
    parser.add_argument(
        "--strategies", nargs="+", default=list(DEFAULT_STRATEGIES)
    )
    parser.add_argument("--modes", nargs="+", default=list(DEFAULT_MODES))
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny sweep (CI smoke): one strategy/mode, workers 1 and 2",
    )
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent
            / "results"
            / "process-scaling.csv"
        ),
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.cardinality = min(args.cardinality, 20_000)
        args.m = min(args.m, 14)
        args.queries = min(args.queries, 4_096)
        args.workers = [1, 2]
        args.strategies = args.strategies[:1]
        args.modes = args.modes[:1]
        args.reps = min(args.reps, 3)

    rows = run(args)
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=FIELDS)
        writer.writeheader()
        writer.writerows(rows)
    print(f"wrote {len(rows)} rows to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
