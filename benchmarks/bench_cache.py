"""Result-cache hit rates and throughput under skewed query streams.

Replays one Zipfian query stream (``repro.workloads.queries.
zipfian_queries`` — a fixed template universe sampled with skew ``s``,
sliced into service-sized batches) through the partition-based strategy
twice: once uncached, once through :class:`repro.cache.CachingExecutor`.
Rows record the median stream time, derived throughput, the speedup
against the uncached run of the same mode/skew, and the cache's own
counters (hit rate, residency, evictions).

Run standalone to (re)record ``results/cache.csv``::

    PYTHONPATH=src python benchmarks/bench_cache.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_cache.py --quick  # CI-sized

What to expect (see ``docs/caching.md``): the win grows with skew (a
hotter template set fits residency and repeats more) and with the
per-query cost the cache avoids — large in ids mode, where every hit
skips materializing an id array; near break-even in count mode, where
the vectorized strategy is already so cheap per query that a Python
dict probe cannot beat it.  Both cells are recorded on purpose.
"""

from __future__ import annotations

import argparse
import csv
import pathlib
import sys
import time

DEFAULT_CARDINALITY = 120_000
DEFAULT_DOMAIN = 128_000_000
DEFAULT_ALPHA = 1.2
DEFAULT_SIGMA = 1_000_000
DEFAULT_M = 16
DEFAULT_BATCH = 1_024
DEFAULT_BATCHES = 8
DEFAULT_UNIVERSE = 8_192
DEFAULT_EXTENT_PCT = 0.1
DEFAULT_SKEWS = (0.0, 0.5, 1.0, 1.5)
DEFAULT_MODES = ("ids", "count")
DEFAULT_REPS = 3

FIELDS = (
    "variant",
    "strategy",
    "mode",
    "skew_s",
    "universe",
    "cardinality",
    "m",
    "batches",
    "batch_size",
    "queries",
    "extent_pct",
    "median_ms",
    "throughput_qps",
    "speedup_vs_uncached",
    "hit_rate",
    "entries",
    "bytes_resident",
    "evictions",
)


def _median(values):
    values = sorted(values)
    return values[len(values) // 2]


def run(args) -> list:
    from repro import CachingExecutor, HintIndex, QueryBatch, run_strategy
    from repro.workloads import generate_synthetic
    from repro.workloads.queries import zipfian_queries

    coll = generate_synthetic(
        args.cardinality, args.domain, args.alpha, args.sigma, seed=args.seed
    ).normalized(args.m)
    index = HintIndex(coll, m=args.m)
    total = args.batches * args.batch
    rows = []
    for mode in args.modes:
        for s in args.skews:
            stream = zipfian_queries(
                total,
                1 << args.m,
                args.extent,
                s=s,
                universe=args.universe,
                seed=args.seed + 1,
            )
            batches = [
                QueryBatch(
                    stream.st[i * args.batch : (i + 1) * args.batch],
                    stream.end[i * args.batch : (i + 1) * args.batch],
                )
                for i in range(args.batches)
            ]
            base = {
                "strategy": args.strategy,
                "mode": mode,
                "skew_s": s,
                "universe": args.universe,
                "cardinality": args.cardinality,
                "m": args.m,
                "batches": args.batches,
                "batch_size": args.batch,
                "queries": total,
                "extent_pct": args.extent,
            }

            times = []
            for _ in range(args.reps):
                t0 = time.perf_counter()
                for b in batches:
                    run_strategy(args.strategy, index, b, mode=mode)
                times.append(time.perf_counter() - t0)
            t_un = _median(times)
            rows.append(
                dict(
                    base,
                    variant="uncached",
                    median_ms=round(t_un * 1e3, 3),
                    throughput_qps=round(total / t_un),
                    speedup_vs_uncached=1.0,
                    hit_rate="",
                    entries="",
                    bytes_resident="",
                    evictions="",
                )
            )

            times = []
            stats = None
            for _ in range(args.reps):
                # A fresh executor per rep: the measured stream always
                # starts cold, so misses are paid honestly.
                cached = CachingExecutor(
                    index,
                    max_bytes=args.max_bytes,
                    partition_tier=args.partition_tier,
                )
                t0 = time.perf_counter()
                for b in batches:
                    cached.execute(b, strategy=args.strategy, mode=mode)
                times.append(time.perf_counter() - t0)
                stats = cached.stats()
            t_c = _median(times)
            speedup = t_un / t_c
            rows.append(
                dict(
                    base,
                    variant="cached",
                    median_ms=round(t_c * 1e3, 3),
                    throughput_qps=round(total / t_c),
                    speedup_vs_uncached=round(speedup, 3),
                    hit_rate=round(stats.hit_rate, 4),
                    entries=stats.entries,
                    bytes_resident=stats.bytes_resident,
                    evictions=stats.evictions,
                )
            )
            print(
                f"{mode:>8} s={s:<4}: uncached {t_un * 1e3:8.1f} ms | "
                f"cached {t_c * 1e3:8.1f} ms | {speedup:5.2f}x | "
                f"hit rate {stats.hit_rate:5.2f}"
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cardinality", type=int, default=DEFAULT_CARDINALITY)
    parser.add_argument("--domain", type=int, default=DEFAULT_DOMAIN)
    parser.add_argument("--alpha", type=float, default=DEFAULT_ALPHA)
    parser.add_argument("--sigma", type=float, default=DEFAULT_SIGMA)
    parser.add_argument("--m", type=int, default=DEFAULT_M)
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--batches", type=int, default=DEFAULT_BATCHES)
    parser.add_argument(
        "--universe", type=int, default=DEFAULT_UNIVERSE,
        help="distinct query templates in the Zipfian stream",
    )
    parser.add_argument(
        "--extent", type=float, default=DEFAULT_EXTENT_PCT,
        help="query extent as percent of the domain",
    )
    parser.add_argument("--skews", type=float, nargs="+",
                        default=list(DEFAULT_SKEWS))
    parser.add_argument("--modes", nargs="+", default=list(DEFAULT_MODES))
    parser.add_argument("--strategy", default="partition-based")
    parser.add_argument("--max-bytes", type=int, default=64 << 20,
                        help="result-tier residency budget")
    parser.add_argument(
        "--partition-tier", action="store_true",
        help="also enable the per-partition probe cache",
    )
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: small index, short stream, one rep",
    )
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent
            / "results"
            / "cache.csv"
        ),
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.cardinality = min(args.cardinality, 30_000)
        args.m = min(args.m, 14)
        args.batch = min(args.batch, 512)
        args.batches = min(args.batches, 4)
        args.universe = min(args.universe, 2_048)
        args.reps = 1

    rows = run(args)
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=FIELDS)
        writer.writeheader()
        writer.writerows(rows)
    print(f"wrote {len(rows)} rows to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
