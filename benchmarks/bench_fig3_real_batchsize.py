"""Figure 3, row 2 — total time vs batch size on the real clones.

Batch sizes bracket the (scaled) grid; every strategy's total time must
grow with the batch, and partition-based must keep winning at every
size.
"""

import pytest

from repro.core.strategies import STRATEGIES, run_strategy
from repro.workloads.queries import uniform_queries

BATCH_SIZES = (250, 1_000, 4_000)


@pytest.mark.parametrize("dataset", ("BOOKS", "WEBKIT", "TAXIS", "GREEND"))
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("strategy", ("query-based", "partition-based"))
def test_bench_batch_size(
    benchmark, real_setup, dataset, batch_size, strategy
):
    index, _, domain = real_setup[dataset]
    batch = uniform_queries(batch_size, domain, 0.1, seed=3)
    benchmark.group = f"fig3-batchsize-{dataset}"
    benchmark.name = f"{strategy}@{batch_size}"
    benchmark(run_strategy, strategy, index, batch, mode="checksum")


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_bench_all_strategies_large_batch(benchmark, real_setup, strategy):
    """The 4K-query point with all four strategies, on BOOKS."""
    index, _, domain = real_setup["BOOKS"]
    batch = uniform_queries(4_000, domain, 0.1, seed=3)
    benchmark.group = "fig3-batchsize-BOOKS-all-strategies"
    benchmark.name = strategy
    benchmark(run_strategy, strategy, index, batch, mode="checksum")
