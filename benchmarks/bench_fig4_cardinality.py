"""Figure 4 — total time vs dataset cardinality (synthetic).

The paper sweeps 10M-1B rows; benchmark scale sweeps proportionally
(30K-480K) — times must grow with cardinality for every strategy.
"""

import pytest

from conftest import synthetic_setup
from repro.core.strategies import run_strategy
from repro.workloads.queries import data_following_queries

CARDINALITIES = (30_000, 120_000, 480_000)


@pytest.mark.parametrize("cardinality", CARDINALITIES)
@pytest.mark.parametrize("strategy", ("query-based", "partition-based"))
def test_bench_cardinality(benchmark, cardinality, strategy):
    index, coll, domain = synthetic_setup(cardinality=cardinality)
    batch = data_following_queries(1_000, coll, 0.1, domain=domain, seed=4)
    benchmark.group = "fig4-cardinality"
    benchmark.name = f"{strategy}@{cardinality // 1000}K"
    benchmark(run_strategy, strategy, index, batch, mode="checksum")
