"""Table 2 — dataset clone generation and index construction.

Table 2 itself is a characteristics report (regenerate with
``python -m repro.experiments table2``); the associated costs worth
benchmarking are clone generation and HINT construction per dataset,
with the realized clone statistics attached as benchmark extra-info.
"""

import pytest

from conftest import BENCH_CARDINALITY
from repro import HintIndex
from repro.workloads.realistic import REAL_DATASET_SPECS, make_realistic_clone

DATASETS = ("BOOKS", "WEBKIT", "TAXIS", "GREEND")


@pytest.mark.parametrize("dataset", DATASETS)
def test_bench_clone_generation(benchmark, dataset):
    n = BENCH_CARDINALITY[dataset]
    benchmark.group = "table2-clone-generation"
    benchmark.name = dataset
    coll = benchmark(make_realistic_clone, dataset, cardinality=n, seed=0)
    stats = coll.stats()
    spec = REAL_DATASET_SPECS[dataset]
    benchmark.extra_info["avg_duration_clone"] = round(stats.avg_duration)
    benchmark.extra_info["avg_duration_paper"] = round(spec.avg_duration)
    # The clone must land in the paper's duration regime.
    assert stats.avg_duration == pytest.approx(spec.avg_duration, rel=0.3)


@pytest.mark.parametrize("dataset", DATASETS)
def test_bench_index_build(benchmark, dataset):
    spec = REAL_DATASET_SPECS[dataset]
    coll = make_realistic_clone(
        dataset, cardinality=BENCH_CARDINALITY[dataset], seed=0
    ).normalized(spec.paper_m)
    benchmark.group = "table2-index-build"
    benchmark.name = f"{dataset}(m={spec.paper_m})"
    index = benchmark(HintIndex, coll, spec.paper_m)
    benchmark.extra_info["replication_factor"] = round(
        index.replication_factor(), 2
    )
    assert index.num_placements() >= len(coll)
