"""Table 5 — applicability of partition-based batching to the 1D-grid.

Three methods per dataset, exactly the rows of the paper's Table 5:
grid query-based, grid partition-based (with sorting), HINT
partition-based (with sorting).
"""

import pytest

from repro.core.strategies import partition_based
from repro.grid.batch import grid_partition_based, grid_query_based

DATASETS = ("BOOKS", "WEBKIT", "TAXIS", "GREEND")


@pytest.mark.parametrize("dataset", DATASETS)
def test_bench_grid_query_based(benchmark, real_grids, real_batches, dataset):
    benchmark.group = f"table5-{dataset}"
    benchmark.name = "1D-grid query-based"
    benchmark(grid_query_based, real_grids[dataset], real_batches[dataset], mode="checksum")


@pytest.mark.parametrize("dataset", DATASETS)
def test_bench_grid_partition_based(benchmark, real_grids, real_batches, dataset):
    benchmark.group = f"table5-{dataset}"
    benchmark.name = "1D-grid partition-based"
    benchmark(grid_partition_based, real_grids[dataset], real_batches[dataset], mode="checksum")


@pytest.mark.parametrize("dataset", DATASETS)
def test_bench_hint_partition_based(benchmark, real_setup, real_batches, dataset):
    index, _, _ = real_setup[dataset]
    benchmark.group = f"table5-{dataset}"
    benchmark.name = "HINT partition-based"
    benchmark(partition_based, index, real_batches[dataset], mode="checksum")
