"""Benchmarks for the beyond-the-paper extensions.

Covers the performance-relevant extended surfaces: dynamic ingest,
Allen-relationship selections, the HINT-based join versus the optFS
plane sweep, the batch accumulator's admission overhead, and
period-index batching.
"""

import numpy as np
import pytest

from repro import AllenSelection, DynamicHint, HintIndex, PeriodIndex
from repro.baselines.period_batch import period_partition_based
from repro.core.accumulator import BatchAccumulator
from repro.core.strategies import partition_based
from repro.joins.hint_join import hint_join_counts
from repro.joins.optfs import join_counts
from repro.workloads.queries import uniform_queries
from repro.workloads.synthetic import generate_synthetic


@pytest.fixture(scope="module")
def data():
    coll = generate_synthetic(100_000, 1 << 20, 1.2, 50_000, seed=0).normalized(20)
    return coll, HintIndex(coll, m=20)


def test_bench_dynamic_ingest(benchmark, data):
    coll, _ = data
    st = coll.st[:20_000]
    end = coll.end[:20_000]
    benchmark.group = "extensions"
    benchmark.name = "dynamic-ingest-20K"

    def run():
        dyn = DynamicHint(m=20, rebuild_threshold=5_000)
        for s, e in zip(st.tolist(), end.tolist()):
            dyn.insert(s, e)
        return dyn.rebuilds

    assert benchmark(run) == 4


@pytest.mark.parametrize("relation", ("contained_by", "overlaps", "meets"))
def test_bench_allen_selection(benchmark, data, relation):
    coll, index = data
    engine = AllenSelection(coll, index)
    benchmark.group = "extensions-allen"
    benchmark.name = relation
    benchmark(engine.query, relation, 400_000, 600_000)


def test_bench_hint_join(benchmark, data):
    coll, index = data
    probe = generate_synthetic(5_000, 1 << 20, 1.4, 50_000, seed=1).normalized(20)
    benchmark.group = "extensions-join"
    benchmark.name = "hint-index-join"
    counts = benchmark(hint_join_counts, index, probe)
    assert np.array_equal(counts, join_counts(probe, coll))


def test_bench_optfs_join(benchmark, data):
    coll, _ = data
    probe = generate_synthetic(5_000, 1 << 20, 1.4, 50_000, seed=1).normalized(20)
    benchmark.group = "extensions-join"
    benchmark.name = "optFS-plane-sweep"
    benchmark(join_counts, probe, coll)


def test_bench_accumulator_throughput(benchmark, data):
    _, index = data
    queries = uniform_queries(4_096, 1 << 20, 0.1, seed=2)
    pairs = list(zip(queries.st.tolist(), queries.end.tolist()))
    benchmark.group = "extensions"
    benchmark.name = "accumulator-4K-submits"

    def run():
        acc = BatchAccumulator(
            lambda b: partition_based(index, b), max_batch=1_024, max_wait=60.0
        )
        for s, e in pairs:
            acc.submit(s, e)
        acc.flush()
        return acc.flushes

    assert benchmark(run) == 4


def test_bench_period_batching(benchmark, data):
    coll, _ = data
    period = PeriodIndex(coll)
    batch = uniform_queries(2_000, 1 << 20, 0.1, seed=3)
    benchmark.group = "extensions"
    benchmark.name = "period-partition-based"
    benchmark(period_partition_based, period, batch)
