"""Latency and goodput of the network serving path under offered load.

The serving-layer question behind the backpressure knobs: when the
offered load exceeds capacity, which policy preserves more *goodput* —
answers delivered within the client's latency budget?

* ``block`` queues excess queries (TCP backpressure through the
  in-flight quota); nothing is shed but queue delay grows, so answers
  increasingly arrive after their budget.
* ``reject`` sheds the excess immediately with a typed ``OVERLOAD``
  response; what is admitted stays fast.

The sweep first calibrates the server's capacity (sustained completion
rate under saturation), then offers open-loop bursty multi-tenant
traces at multiples of it through both policies, recording p50/p99/p999
latency and goodput (``ok`` within ``GOODPUT_BUDGET_MS``) per run into
``results/serve-net.csv`` (``make bench-serve``)::

    PYTHONPATH=src python benchmarks/bench_serve_net.py --out results/serve-net.csv

Two properties are asserted, exiting non-zero when violated:

* every offered request is answered (no hung sockets, under every
  policy and multiplier), and
* at >= 2x capacity, reject-mode goodput is at least block-mode goodput
  — the whole point of graceful shedding.
"""

from __future__ import annotations

import argparse
import csv
import sys
import time
from pathlib import Path

from repro import HintIndex
from repro.net import serve_in_thread
from repro.net.loadgen import run_load, summarize
from repro.service import BatchingQueryService
from repro.workloads.arrivals import ArrivalSpec
from repro.workloads.synthetic import generate_synthetic

M = 16
CARDINALITY = 200_000
EXTENT = 4096
WORK_MS_PER_QUERY = 1.0
DURATION_S = 3.0
CALIBRATE_S = 1.5
CALIBRATE_RATE = 6_000.0
MULTIPLIERS = (0.5, 1.0, 2.0, 4.0)
GOODPUT_BUDGET_MS = 100.0
PROCESSES = 2


class SimulatedWorkIndex:
    """Backend adding ``work_ms`` of *sleeping* latency per query.

    HINT answers these microsecond-cheap queries so fast that on a
    single shared host the open-loop generator, not the server, becomes
    the bottleneck — and a generator that cannot offer 2x capacity
    cannot measure overload.  Sleeping (instead of burning CPU) models
    a proportionally slower index while leaving the CPU to the load
    generator; the behaviours under test — admission, in-flight
    quotas, queueing vs shedding, deadline drops — all run unmodified
    against real executions.
    """

    def __init__(self, index: HintIndex, work_ms: float):
        self.index = index
        self.work_ms = work_ms

    def execute(self, batch, *, strategy: str, mode: str):
        from repro.core.strategies import run_strategy

        result = run_strategy(strategy, self.index, batch, mode=mode)
        time.sleep(len(batch) * self.work_ms / 1000.0)
        return result

    def close(self) -> None:
        pass


def _build_index() -> SimulatedWorkIndex:
    coll = generate_synthetic(
        CARDINALITY, 1 << M, 1.2, 8_000.0, seed=7
    ).normalized(M)
    return SimulatedWorkIndex(HintIndex(coll, m=M), WORK_MS_PER_QUERY)


def _spec(rate: float, duration: float, seed: int) -> ArrivalSpec:
    return ArrivalSpec(
        duration=duration,
        rate=rate,
        burst_factor=4.0,
        burst_every=1.0,
        burst_duration=0.25,
        tenants=("alpha", "beta", "gamma"),
        domain=(1 << M) - 1,
        extent=EXTENT,
        deadline_ms=int(GOODPUT_BUDGET_MS),
        seed=seed,
    )


def _serve(index, backpressure: str, max_inflight: int):
    service = BatchingQueryService(
        index,
        mode="count",
        max_batch=128,
        max_delay_ms=2.0,
        max_queue=max(max_inflight, 1),
        backpressure=backpressure,
    )
    return serve_in_thread(
        service,
        backpressure=backpressure,
        max_inflight=max_inflight,
        owns_service=True,
    )


def calibrate(index) -> float:
    """Estimate sustained capacity: saturate a block-mode server
    (no client deadlines) and take the completion rate."""
    handle = _serve(index, "block", max_inflight=256)
    try:
        spec = ArrivalSpec(
            duration=CALIBRATE_S,
            rate=CALIBRATE_RATE,
            burst_factor=1.0,
            tenants=("cal",),
            domain=(1 << M) - 1,
            extent=EXTENT,
            seed=3,
        )
        t0 = time.perf_counter()
        records = run_load(
            handle.host, handle.port, spec, processes=PROCESSES
        )
        elapsed = time.perf_counter() - t0
    finally:
        handle.close()
    oks = sum(1 for r in records if r.status == "ok")
    return oks / elapsed


def run_sweep(out_path=None):
    index = _build_index()
    capacity = calibrate(index)
    print(f"calibrated capacity ~{capacity:,.0f} q/s")
    # Size the in-flight quota to ~half a budget window of work: what
    # the reject policy admits completes inside the budget, while the
    # block policy's queueing pushes completions past it.
    max_inflight = max(16, int(capacity * GOODPUT_BUDGET_MS / 2000.0))
    rows = []
    failures = []
    for backpressure in ("block", "reject"):
        for mult in MULTIPLIERS:
            rate = capacity * mult
            handle = _serve(index, backpressure, max_inflight)
            try:
                records = run_load(
                    handle.host,
                    handle.port,
                    _spec(rate, DURATION_S, seed=17),
                    processes=PROCESSES,
                )
            finally:
                handle.close()
            s = summarize(
                records,
                duration=DURATION_S,
                goodput_budget_ms=GOODPUT_BUDGET_MS,
            )
            if s.unanswered:
                failures.append(
                    f"{backpressure} x{mult:g}: "
                    f"{s.unanswered} unanswered request(s)"
                )
            rows.append(
                {
                    "backpressure": backpressure,
                    "offered_mult": mult,
                    "offered_qps": round(rate, 1),
                    "duration_s": DURATION_S,
                    "offered": s.offered,
                    "answered": s.answered,
                    "unanswered": s.unanswered,
                    "ok": s.ok,
                    "deadline_exceeded": s.by_status.get(
                        "deadline_exceeded", 0
                    ),
                    "overload": s.by_status.get("overload", 0),
                    "goodput_qps": round(s.goodput_qps, 1),
                    "p50_ms": round(s.p50_ms, 3),
                    "p99_ms": round(s.p99_ms, 3),
                    "p999_ms": round(s.p999_ms, 3),
                }
            )
            print(
                f"{backpressure:>6} x{mult:<3g} offered {rate:>7,.0f} q/s: "
                f"{s.describe()}"
            )
    # The acceptance gate: graceful shedding must not lose goodput at
    # or beyond 2x capacity.
    for mult in (m for m in MULTIPLIERS if m >= 2.0):
        block = next(
            r for r in rows
            if r["backpressure"] == "block" and r["offered_mult"] == mult
        )
        reject = next(
            r for r in rows
            if r["backpressure"] == "reject" and r["offered_mult"] == mult
        )
        verdict = reject["goodput_qps"] >= block["goodput_qps"]
        print(
            f"x{mult:g}: reject goodput {reject['goodput_qps']:,.0f} "
            f"{'>=' if verdict else '<'} block goodput "
            f"{block['goodput_qps']:,.0f} q/s"
        )
        if not verdict:
            failures.append(
                f"x{mult:g}: reject goodput {reject['goodput_qps']} < "
                f"block goodput {block['goodput_qps']}"
            )
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        with out_path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        print(f"wrote {out_path}")
    return rows, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="CSV output path")
    args = parser.parse_args(argv)
    _, failures = run_sweep(args.out)
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
