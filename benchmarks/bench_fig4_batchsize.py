"""Figure 4 — total time vs batch size (synthetic).

Larger batches take longer in absolute terms, but per-query time drops
for the sharing strategies — the scaling behaviour that motivates batch
processing.
"""

import pytest

from conftest import synthetic_setup
from repro.core.strategies import run_strategy
from repro.workloads.queries import data_following_queries

BATCH_SIZES = (250, 1_000, 4_000)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("strategy", ("query-based", "partition-based"))
def test_bench_batch_size(benchmark, batch_size, strategy):
    index, coll, domain = synthetic_setup()
    batch = data_following_queries(batch_size, coll, 0.1, domain=domain, seed=4)
    benchmark.group = "fig4-batchsize"
    benchmark.name = f"{strategy}@{batch_size}"
    benchmark(run_strategy, strategy, index, batch, mode="checksum")
