"""Ablation A2 — simulated LRU cache misses per strategy.

Times the trace-and-replay pipeline per strategy and asserts the
paper's mechanism: batch strategies suffer no more misses than the
serial baseline, with partition-based at the minimum.  Miss counts are
attached as benchmark extra-info.
"""

import pytest

from repro.analysis.cache import simulate_cache
from repro.analysis.trace import AccessRecorder
from repro.hint.index import HintIndex
from repro.hint.reference import ReferenceHint
from repro.workloads.queries import uniform_queries
from repro.workloads.realistic import REAL_DATASET_SPECS, make_realistic_clone

STRATEGIES = [
    ("query-based", "batch_query_based", {"sort": False}),
    ("query-based-sorted", "batch_query_based", {"sort": True}),
    ("level-based", "batch_level_based", {}),
    ("partition-based", "batch_partition_based", {}),
]

CACHE_BLOCKS = 32


@pytest.fixture(scope="module")
def cache_setup():
    spec = REAL_DATASET_SPECS["BOOKS"]
    coll = make_realistic_clone("BOOKS", cardinality=20_000, seed=1).normalized(
        spec.paper_m
    )
    ref = ReferenceHint(coll, m=spec.paper_m)
    index = HintIndex(coll, m=spec.paper_m)
    batch = uniform_queries(128, 1 << spec.paper_m, 1.0, seed=1)
    return ref, index, batch


@pytest.fixture(scope="module")
def miss_counts(cache_setup):
    ref, index, batch = cache_setup
    misses = {}
    for name, method, kwargs in STRATEGIES:
        recorder = AccessRecorder()
        getattr(ref, method)(batch, recorder=recorder, **kwargs)
        misses[name] = simulate_cache(
            recorder.partition_sequence(), CACHE_BLOCKS, index=index
        ).misses
    return misses


@pytest.mark.parametrize("name,method,kwargs", STRATEGIES)
def test_bench_trace_and_replay(
    benchmark, cache_setup, miss_counts, name, method, kwargs
):
    ref, index, batch = cache_setup
    benchmark.group = "ablation-cache"
    benchmark.name = name
    benchmark.extra_info["simulated_misses"] = miss_counts[name]

    def run():
        recorder = AccessRecorder()
        getattr(ref, method)(batch, recorder=recorder, **kwargs)
        return simulate_cache(
            recorder.partition_sequence(), CACHE_BLOCKS, index=index
        ).misses

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_cache_ordering_matches_paper(miss_counts):
    assert miss_counts["partition-based"] <= miss_counts["level-based"]
    assert miss_counts["level-based"] <= miss_counts["query-based-sorted"]
    assert miss_counts["query-based-sorted"] <= miss_counts["query-based"]
    # the headline gap: batching vs serial
    assert miss_counts["partition-based"] < miss_counts["query-based"]
