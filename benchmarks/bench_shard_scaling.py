"""Shard-count scaling of :class:`repro.shard.ShardedHint`.

Measures batch throughput of the sharded backend against a single
:class:`~repro.hint.HintIndex` evaluated with the same strategy, on the
repository's default synthetic workload (the paper's Table 3 defaults at
benchmark scale, exactly as in ``benchmarks/conftest.synthetic_setup``):
``domain = 128M``, ``alpha = 1.2``, ``sigma = 1M``, normalized to
``m = 17``, with data-following queries of 0.1% extent.

Run standalone to (re)record ``results/shard-scaling.csv``::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py

Each row records the median batch latency over ``--reps`` runs, the
derived queries/second, and the speedup against the single-index
baseline of the same mode.  Results are machine-dependent: the gains on
a single core come from the shallower, cache-resident per-shard
hierarchies (see ``docs/sharding.md``); on multi-core hosts the thread
pool multiplies them.
"""

from __future__ import annotations

import argparse
import csv
import os
import pathlib
import sys
import time

DEFAULT_CARDINALITY = 150_000
DEFAULT_DOMAIN = 128_000_000
DEFAULT_ALPHA = 1.2
DEFAULT_SIGMA = 1_000_000
DEFAULT_M = 17
DEFAULT_QUERIES = 65_536
DEFAULT_EXTENT_PCT = 0.1
DEFAULT_KS = (1, 2, 4, 8, 16)
DEFAULT_REPS = 9

FIELDS = (
    "backend",
    "k",
    "boundaries",
    "strategy",
    "mode",
    "cardinality",
    "m",
    "queries",
    "extent_pct",
    "workers",
    "cpu_count",
    "median_ms",
    "throughput_qps",
    "speedup_vs_single",
)


def _median_seconds(fn, reps: int) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]


def run(args) -> list:
    import numpy as np  # noqa: F401  (keeps import errors early and obvious)

    from repro import HintIndex, run_strategy
    from repro.shard import ShardedHint
    from repro.workloads import generate_synthetic
    from repro.workloads.queries import data_following_queries

    coll = generate_synthetic(
        args.cardinality, args.domain, args.alpha, args.sigma, seed=args.seed
    ).normalized(args.m)
    batch = data_following_queries(
        args.queries, coll, args.extent, domain=1 << args.m, seed=args.seed + 1
    )
    index = HintIndex(coll, m=args.m)
    cpus = os.cpu_count() or 1
    rows = []
    for mode in args.modes:
        t_single = _median_seconds(
            lambda: run_strategy(args.strategy, index, batch, mode=mode),
            args.reps,
        )
        base = {
            "strategy": args.strategy,
            "mode": mode,
            "cardinality": args.cardinality,
            "m": args.m,
            "queries": len(batch),
            "extent_pct": args.extent,
            "cpu_count": cpus,
        }
        rows.append(
            dict(
                base,
                backend="single",
                k="",
                boundaries="",
                workers="",
                median_ms=round(t_single * 1e3, 3),
                throughput_qps=round(len(batch) / t_single),
                speedup_vs_single=1.0,
            )
        )
        print(f"{mode:>9}: single-index {t_single * 1e3:8.1f} ms")
        for k in args.ks:
            sharded = ShardedHint(
                coll, k=k, m=args.m, boundaries=args.boundaries,
                workers=args.workers,
            )
            t = _median_seconds(
                lambda: sharded.execute(batch, strategy=args.strategy, mode=mode),
                args.reps,
            )
            speedup = t_single / t
            rows.append(
                dict(
                    base,
                    backend="sharded",
                    k=k,
                    boundaries=args.boundaries,
                    workers=sharded.workers,
                    median_ms=round(t * 1e3, 3),
                    throughput_qps=round(len(batch) / t),
                    speedup_vs_single=round(speedup, 3),
                )
            )
            print(
                f"{mode:>9}: k={k:<3} {t * 1e3:8.1f} ms   {speedup:5.2f}x "
                f"(shard m: {[s.index.m for s in sharded.shards]})"
            )
            sharded.close()
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cardinality", type=int, default=DEFAULT_CARDINALITY)
    parser.add_argument("--domain", type=int, default=DEFAULT_DOMAIN)
    parser.add_argument("--alpha", type=float, default=DEFAULT_ALPHA)
    parser.add_argument("--sigma", type=float, default=DEFAULT_SIGMA)
    parser.add_argument("--m", type=int, default=DEFAULT_M)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument(
        "--extent", type=float, default=DEFAULT_EXTENT_PCT,
        help="query extent as percent of the domain",
    )
    parser.add_argument(
        "--ks", type=int, nargs="+", default=list(DEFAULT_KS),
        help="shard counts to measure",
    )
    parser.add_argument("--boundaries", default="balanced",
                        choices=("equal", "balanced"))
    parser.add_argument("--strategy", default="partition-based")
    parser.add_argument("--modes", nargs="+", default=["count", "checksum"])
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent
            / "results"
            / "shard-scaling.csv"
        ),
    )
    args = parser.parse_args(argv)

    rows = run(args)
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=FIELDS)
        writer.writeheader()
        writer.writerows(rows)
    print(f"wrote {len(rows)} rows to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
