"""Overhead of the observability plane on the hot batch path.

The whole design of :mod:`repro.obs` rests on one promise: when the
plane is disabled (the default), the instrumented production code costs
what un-instrumented code would — a single ``obs.active() is None``
check per batch.  This benchmark turns the promise into a gate.  It
times ``partition_based`` (the fastest strategy, i.e. the one with the
least work to hide an overhead in) under three configurations:

* **baseline** — the internal ``_partition_based_run(..., ob=None)``
  entry, bypassing even the module-level gate: what the code would cost
  with no observability subsystem at all;
* **obs-off** — the public strategy with the plane disabled: what every
  user pays by default;
* **obs-on** — the plane enabled (spans + per-level counters), the
  price of actually looking.

The gate is **obs-off <= 1.05 x baseline** on median batch time
(ISSUE 3's <5% policy, documented in ``docs/observability.md``).
obs-on is reported for context but not gated — enabling telemetry is an
explicit choice with a known cost.

Run directly to record the numbers (``make obs-smoke`` uses --quick)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \\
        --out results/obs-overhead.csv

The script exits non-zero when the gate fails.
"""

from __future__ import annotations

import argparse
import csv
import statistics
import sys
import time
from pathlib import Path

from conftest import DEFAULT_EXTENT, synthetic_setup

import repro.obs as obs
from repro.core.strategies import _partition_based_run, partition_based
from repro.workloads.queries import data_following_queries

N_QUERIES = 5_000
REPEATS = 9
#: Maximum tolerated obs-off/baseline median ratio (the <5% policy).
MAX_DISABLED_OVERHEAD = 1.05


def _workload(n_queries: int, *, quick: bool):
    if quick:
        index, coll, domain = synthetic_setup(
            domain=16_000_000, cardinality=40_000, sigma=200_000, m=14
        )
    else:
        index, coll, domain = synthetic_setup()
    batch = data_following_queries(
        n_queries, coll, DEFAULT_EXTENT, domain=domain, seed=23
    )
    return index, batch


def _median_time(fn, repeats: int) -> float:
    # One untimed warm-up absorbs allocator/cache effects, then the
    # median over `repeats` timed passes resists scheduler noise.
    fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def run_gate(out: str = None, n_queries: int = N_QUERIES, repeats: int = REPEATS,
             *, quick: bool = False):
    index, batch = _workload(n_queries, quick=quick)
    obs.configure(enabled=False)

    configs = [
        (
            "baseline",
            lambda: _partition_based_run(index, batch, True, "count", None),
        ),
        ("obs-off", lambda: partition_based(index, batch, mode="count")),
    ]
    rows = []
    for name, fn in configs:
        median = _median_time(fn, repeats)
        rows.append({"config": name, "median_s": median})
        print(f"{name:<9} median {median * 1000:8.2f} ms "
              f"({n_queries} queries, {repeats} repeats)")

    obs.configure(enabled=True)
    median_on = _median_time(
        lambda: partition_based(index, batch, mode="count"), repeats
    )
    rows.append({"config": "obs-on", "median_s": median_on})
    print(f"{'obs-on':<9} median {median_on * 1000:8.2f} ms "
          f"({n_queries} queries, {repeats} repeats)")
    obs.configure(enabled=False)

    base = rows[0]["median_s"]
    for row in rows:
        row["queries"] = n_queries
        row["repeats"] = repeats
        row["overhead_vs_baseline"] = row["median_s"] / base

    if out:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(
                fh,
                fieldnames=[
                    "config", "queries", "repeats",
                    "median_s", "overhead_vs_baseline",
                ],
            )
            writer.writeheader()
            for row in rows:
                writer.writerow(
                    {
                        **row,
                        "median_s": f"{row['median_s']:.6f}",
                        "overhead_vs_baseline":
                            f"{row['overhead_vs_baseline']:.4f}",
                    }
                )
        print(f"wrote {path}")
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="CSV output path")
    parser.add_argument("--queries", type=int, default=N_QUERIES)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workload + fewer repeats (the CI smoke configuration)",
    )
    args = parser.parse_args(argv)
    n_queries = min(args.queries, 2_000) if args.quick else args.queries
    repeats = min(args.repeats, 5) if args.quick else args.repeats
    rows = run_gate(args.out, n_queries, repeats, quick=args.quick)
    by_config = {row["config"]: row for row in rows}
    ratio = by_config["obs-off"]["overhead_vs_baseline"]
    if ratio > MAX_DISABLED_OVERHEAD:
        print(
            f"FAIL: disabled-plane overhead {(ratio - 1) * 100:.1f}% exceeds "
            f"the {(MAX_DISABLED_OVERHEAD - 1) * 100:.0f}% policy",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: disabled-plane overhead {(ratio - 1) * 100:+.1f}% "
        f"(policy < {(MAX_DISABLED_OVERHEAD - 1) * 100:.0f}%); "
        f"enabled plane costs "
        f"{(by_config['obs-on']['overhead_vs_baseline'] - 1) * 100:+.1f}%"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
