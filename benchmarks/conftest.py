"""Session-scoped workload fixtures shared by every benchmark.

Benchmark datasets are smaller than the ``repro.experiments`` defaults so
that a full ``pytest benchmarks/ --benchmark-only`` run stays in the
minutes range; experiment-scale numbers come from
``python -m repro.experiments``.  Sizes keep the paper's relative
proportions (TAXIS/GREEND much larger and shorter than BOOKS/WEBKIT).
"""

from __future__ import annotations

import pytest

from repro import GridIndex, HintIndex
from repro.workloads.queries import data_following_queries, uniform_queries
from repro.workloads.realistic import REAL_DATASET_SPECS, make_realistic_clone
from repro.workloads.synthetic import generate_synthetic

#: Benchmark-scale cardinalities per real-dataset clone.
BENCH_CARDINALITY = {
    "BOOKS": 60_000,
    "WEBKIT": 60_000,
    "TAXIS": 200_000,
    "GREEND": 150_000,
}

DEFAULT_BATCH = 1_000
DEFAULT_EXTENT = 0.1


@pytest.fixture(scope="session")
def real_setup():
    """dataset name -> (hint index, normalized collection, domain)."""
    out = {}
    for name, n in BENCH_CARDINALITY.items():
        spec = REAL_DATASET_SPECS[name]
        coll = make_realistic_clone(name, cardinality=n, seed=0).normalized(
            spec.paper_m
        )
        out[name] = (HintIndex(coll, m=spec.paper_m), coll, 1 << spec.paper_m)
    return out


@pytest.fixture(scope="session")
def real_grids(real_setup):
    """dataset name -> 1D-grid over the same normalized collection."""
    return {
        name: GridIndex(coll, domain=(0, domain - 1))
        for name, (_, coll, domain) in real_setup.items()
    }


@pytest.fixture(scope="session")
def real_batches(real_setup):
    """dataset name -> default query batch (uniform, 0.1 %, 1K)."""
    return {
        name: uniform_queries(DEFAULT_BATCH, domain, DEFAULT_EXTENT, seed=1)
        for name, (_, __, domain) in real_setup.items()
    }


import functools


@functools.lru_cache(maxsize=None)
def synthetic_setup(
    domain=128_000_000,
    cardinality=150_000,
    alpha=1.2,
    sigma=1_000_000,
    m=17,
    seed=0,
):
    """Build one synthetic configuration at benchmark scale (memoized so
    parametrized benchmarks share builds)."""
    coll = generate_synthetic(cardinality, domain, alpha, sigma, seed=seed)
    normalized = coll.normalized(m)
    return HintIndex(normalized, m=m), normalized, 1 << m


@pytest.fixture(scope="session")
def synth_default():
    return synthetic_setup()


@pytest.fixture(scope="session")
def synth_default_batch(synth_default):
    _, coll, domain = synth_default
    return data_following_queries(
        DEFAULT_BATCH, coll, DEFAULT_EXTENT, domain=domain, seed=1
    )
