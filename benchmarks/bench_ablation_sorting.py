"""Ablation A1 — effect of sorting the batch by query start.

Each strategy with sorting toggled, on a long-interval and a
short-interval clone.  In this columnar build, sorting's cache benefit
for query-based is small (it is a hardware effect; see the cache
ablation), but it must never hurt beyond noise, and partition-based
sorts internally regardless.
"""

import pytest

from repro.core.strategies import level_based, partition_based, query_based

VARIANTS = [
    ("query-based", query_based, False),
    ("query-based", query_based, True),
    ("level-based", level_based, False),
    ("level-based", level_based, True),
    ("partition-based", partition_based, False),
    ("partition-based", partition_based, True),
]


@pytest.mark.parametrize("dataset", ("BOOKS", "TAXIS"))
@pytest.mark.parametrize("name,fn,sort", VARIANTS)
def test_bench_sorting(benchmark, real_setup, real_batches, dataset, name, fn, sort):
    index, _, _ = real_setup[dataset]
    batch = real_batches[dataset]
    benchmark.group = f"ablation-sorting-{dataset}"
    benchmark.name = f"{name}{'+sort' if sort else ''}"
    benchmark(fn, index, batch, sort=sort, mode="checksum")
