"""Figure 4 — total time vs interval-position spread sigma (synthetic).

Larger sigma spreads the data (and the data-following queries), so
per-query result sets shrink and every strategy speeds up — the paper's
downward-sloping sigma plot.
"""

import pytest

from conftest import synthetic_setup
from repro.core.strategies import run_strategy
from repro.workloads.queries import data_following_queries

SIGMAS = (10_000, 1_000_000, 10_000_000)


@pytest.mark.parametrize("sigma", SIGMAS)
@pytest.mark.parametrize("strategy", ("query-based", "partition-based"))
def test_bench_sigma(benchmark, sigma, strategy):
    index, coll, domain = synthetic_setup(sigma=sigma)
    batch = data_following_queries(1_000, coll, 0.1, domain=domain, seed=4)
    benchmark.group = "fig4-sigma"
    benchmark.name = f"{strategy}@s={sigma // 1000}K"
    benchmark(run_strategy, strategy, index, batch, mode="checksum")
