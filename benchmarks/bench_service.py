"""Throughput of the micro-batching service vs per-query dispatch.

The serving-layer question the paper's batching argument implies: given
a stream of independent queries, how much throughput does coalescing
them into batches buy over answering each with
:meth:`~repro.hint.index.HintIndex.query_count`?  This sweep pushes the
same query stream through

* **per-query dispatch** — ``index.query_count(st, end)`` in a loop
  (the no-batching baseline, amortizing nothing), and
* the **service** — :class:`~repro.service.BatchingQueryService` over a
  ``max_batch`` x ``max_delay_ms`` grid, submitters running full tilt
  (so flushes close by size; the deadline column shows the latency
  bound does not cost throughput when traffic is heavy).

Run directly to record the sweep (``make bench-service``)::

    PYTHONPATH=src python benchmarks/bench_service.py --out results/service.csv

or through pytest-benchmark along with the other benchmarks.  The
default synthetic workload must show >= 2x speedup for coalesced
batches of 64+ queries; the script exits non-zero if it does not.
"""

from __future__ import annotations

import argparse
import csv
import sys
import time
from pathlib import Path

from conftest import DEFAULT_EXTENT, synthetic_setup

from repro.service import BatchingQueryService
from repro.workloads.queries import data_following_queries

N_QUERIES = 4_000
BATCH_GRID = (16, 64, 256, 1024)
DELAY_GRID_MS = (1.0, 5.0)


def _workload(n_queries: int = N_QUERIES):
    index, coll, domain = synthetic_setup()
    batch = data_following_queries(
        n_queries, coll, DEFAULT_EXTENT, domain=domain, seed=11
    )
    return index, list(batch)


def measure_per_query(index, queries) -> float:
    t0 = time.perf_counter()
    for q_st, q_end in queries:
        index.query_count(q_st, q_end)
    return time.perf_counter() - t0


def measure_service(index, queries, *, max_batch: int, max_delay_ms: float) -> float:
    service = BatchingQueryService(
        index,
        max_batch=max_batch,
        max_delay_ms=max_delay_ms,
        max_queue=len(queries),
    )
    t0 = time.perf_counter()
    futures = [service.submit(q_st, q_end) for q_st, q_end in queries]
    for f in futures:
        f.result()
    elapsed = time.perf_counter() - t0
    service.close()
    return elapsed


def run_sweep(out_path=None, n_queries: int = N_QUERIES):
    """Sweep batch size x deadline; returns the result rows."""
    index, queries = _workload(n_queries)
    n = len(queries)
    measure_per_query(index, queries[:200])  # warmup
    serial = measure_per_query(index, queries)
    rows = [
        {
            "dispatch": "per-query",
            "max_batch": 1,
            "max_delay_ms": 0.0,
            "queries": n,
            "seconds": serial,
            "qps": n / serial,
            "speedup": 1.0,
        }
    ]
    print(f"per-query dispatch: {serial:.3f}s ({n / serial:,.0f} q/s)")
    for max_batch in BATCH_GRID:
        for delay in DELAY_GRID_MS:
            elapsed = measure_service(
                index, queries, max_batch=max_batch, max_delay_ms=delay
            )
            speedup = serial / elapsed
            rows.append(
                {
                    "dispatch": "service",
                    "max_batch": max_batch,
                    "max_delay_ms": delay,
                    "queries": n,
                    "seconds": elapsed,
                    "qps": n / elapsed,
                    "speedup": speedup,
                }
            )
            print(
                f"service max_batch={max_batch:>5} max_delay_ms={delay:>4g}: "
                f"{elapsed:.3f}s ({n / elapsed:,.0f} q/s, {speedup:.1f}x)"
            )
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        with out_path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        print(f"wrote {out_path}")
    return rows


def test_bench_service_throughput(benchmark, synth_default, synth_default_batch):
    """pytest-benchmark entry: the default service configuration."""
    index, _, _ = synth_default
    queries = list(synth_default_batch)

    def run():
        return measure_service(index, queries, max_batch=256, max_delay_ms=5.0)

    benchmark.group = "service"
    benchmark.name = "service@256"
    benchmark(run)


def test_bench_per_query_dispatch(benchmark, synth_default, synth_default_batch):
    """pytest-benchmark entry: the no-batching baseline."""
    index, _, _ = synth_default
    queries = list(synth_default_batch)
    benchmark.group = "service"
    benchmark.name = "per-query"
    benchmark(measure_per_query, index, queries)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="CSV output path")
    parser.add_argument("--queries", type=int, default=N_QUERIES)
    args = parser.parse_args(argv)
    rows = run_sweep(args.out, args.queries)
    coalesced = [r for r in rows if r["dispatch"] == "service" and r["max_batch"] >= 64]
    best = max(r["speedup"] for r in coalesced)
    if best < 2.0:
        print(
            f"FAIL: best coalesced speedup {best:.2f}x < 2x over per-query dispatch",
            file=sys.stderr,
        )
        return 1
    print(f"OK: coalesced batches (>=64) reach {best:.1f}x over per-query dispatch")
    return 0


if __name__ == "__main__":
    sys.exit(main())
