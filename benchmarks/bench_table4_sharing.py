"""Table 4 — impact of computation sharing.

Times each strategy against the serial baseline at the default setting
and attaches the Table 4 percentage (share of the batch a serial
executor would finish in the strategy's total time) as extra-info.
The paper's qualitative finding asserted here: partition-based shares
the most (lowest percentage).
"""

import pytest

from repro.analysis.sharing import computation_sharing
from repro.core.strategies import run_strategy
from repro.experiments.runner import time_call

DATASETS = ("BOOKS", "WEBKIT", "TAXIS", "GREEND")
STRATEGIES = ("query-based-sorted", "level-based", "partition-based")


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_bench_sharing(benchmark, real_setup, real_batches, dataset, strategy):
    index, _, _ = real_setup[dataset]
    batch = real_batches[dataset]
    serial = time_call(run_strategy, "query-based", index, batch, mode="checksum", repeats=3, warmup=True)
    benchmark.group = f"table4-sharing-{dataset}"
    benchmark.name = strategy
    benchmark(run_strategy, strategy, index, batch, mode="checksum")
    measured = time_call(run_strategy, strategy, index, batch, mode="checksum", repeats=3, warmup=True)
    pct = computation_sharing({strategy: measured}, serial)[strategy]
    benchmark.extra_info["sharing_pct_vs_serial"] = round(pct, 1)
    if strategy == "partition-based":
        assert pct < 100.0, "partition-based must beat the serial baseline"
