"""Figure 3, row 1 — strategies on the real-dataset clones.

One benchmark per (dataset, strategy) at the default setting (query
extent 0.1 %, batch 1K), plus the extent extremes on BOOKS and TAXIS to
capture the row's curvature.  Full five-point sweeps:
``python -m repro.experiments figure3``.
"""

import pytest

from repro.core.strategies import STRATEGIES, run_strategy
from repro.workloads.queries import uniform_queries

DATASETS = ("BOOKS", "WEBKIT", "TAXIS", "GREEND")


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_bench_default_extent(benchmark, real_setup, real_batches, dataset, strategy):
    index, _, _ = real_setup[dataset]
    batch = real_batches[dataset]
    benchmark.group = f"fig3-extent-0.1pct-{dataset}"
    benchmark.name = strategy
    result = benchmark(run_strategy, strategy, index, batch, mode="checksum")
    assert result.total() >= 0


@pytest.mark.parametrize("dataset", ("BOOKS", "TAXIS"))
@pytest.mark.parametrize("extent_pct", (0.01, 1.0))
@pytest.mark.parametrize("strategy", ("query-based", "partition-based"))
def test_bench_extent_extremes(
    benchmark, real_setup, dataset, extent_pct, strategy
):
    index, _, domain = real_setup[dataset]
    batch = uniform_queries(1_000, domain, extent_pct, seed=2)
    benchmark.group = f"fig3-extent-sweep-{dataset}"
    benchmark.name = f"{strategy}@{extent_pct}%"
    benchmark(run_strategy, strategy, index, batch, mode="checksum")
