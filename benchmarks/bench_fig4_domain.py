"""Figure 4 — total time vs domain size (synthetic).

Longer domains under a fixed relative query extent mean longer, less
selective queries; every strategy slows down and partition-based keeps
the lead.
"""

import pytest

from conftest import synthetic_setup
from repro.core.strategies import run_strategy
from repro.workloads.queries import data_following_queries

DOMAINS = (32_000_000, 128_000_000, 512_000_000)


@pytest.mark.parametrize("domain", DOMAINS)
@pytest.mark.parametrize("strategy", ("query-based", "partition-based"))
def test_bench_domain(benchmark, domain, strategy):
    index, coll, index_domain = synthetic_setup(domain=domain)
    batch = data_following_queries(1_000, coll, 0.1, domain=index_domain, seed=4)
    benchmark.group = "fig4-domain"
    benchmark.name = f"{strategy}@{domain // 1_000_000}M"
    benchmark(run_strategy, strategy, index, batch, mode="checksum")
