"""Setup shim.

All project metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e .`` also works on environments whose setuptools
lacks the ``wheel`` package needed for PEP 660 editable installs (pip
falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
