"""Time-travel queries over a temporal employee table.

The motivating scenario of the paper's introduction: a temporal
database where each tuple carries a validity interval, answering
*timeslice* queries like "who was employed sometime in
[2021-01-01, 2021-02-28]?".  A dashboard fires thousands of such
queries at once — a batch.

Run with::

    python examples/temporal_database.py
"""

import datetime as dt
import time

import numpy as np

from repro import HintIndex, IntervalCollection, QueryBatch, partition_based, query_based

EPOCH = dt.date(2000, 1, 1)


def day(date: dt.date) -> int:
    """Calendar date -> discrete domain value (days since 2000-01-01)."""
    return (date - EPOCH).days


def main():
    rng = np.random.default_rng(2024)

    # --- 1. a synthetic HR table: 300K employment spells ----------------
    # Hires spread over 2000-2024; tenures from days to decades.
    n = 300_000
    hire = rng.integers(day(dt.date(2000, 1, 2)), day(dt.date(2024, 1, 1)), size=n)
    tenure_days = np.minimum(
        rng.lognormal(mean=6.5, sigma=1.2, size=n).astype(np.int64) + 1,
        9_000,
    )
    leave = np.minimum(hire + tenure_days, day(dt.date(2026, 1, 1)))
    spells = IntervalCollection(hire, leave)
    print(f"employment spells: {spells}")
    print(f"  avg tenure: {spells.durations.mean() / 365.25:.1f} years")

    # --- 2. index with HINT (domain ~9.5K days -> m = 14) ----------------
    m = 14
    index = HintIndex(spells.normalized(m), m=m)
    scale = ((1 << m) - 1) / (spells.stats().domain_length - 1)
    origin = spells.stats().domain_start
    print(f"index: {index}")

    def normalize(d: int) -> int:
        return int((d - origin) * scale)

    # --- 3. a batch of month-long timeslice queries ----------------------
    # One query per (month, department-dashboard) refresh: 10K queries.
    months = []
    for year in range(2001, 2025):
        for month in range(1, 13):
            months.append(dt.date(year, month, 1))
    picks = rng.integers(0, len(months), size=10_000)
    q_st = np.array([normalize(day(months[p])) for p in picks])
    q_end = np.array(
        [normalize(day(months[p] + dt.timedelta(days=27))) for p in picks]
    )
    batch = QueryBatch(q_st, q_end)

    # --- 4. serial vs partition-based batch ------------------------------
    t0 = time.perf_counter()
    serial = query_based(index, batch)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = partition_based(index, batch)
    t_batch = time.perf_counter() - t0

    assert np.array_equal(serial.counts, batched.counts)
    print(f"serial (query-based):        {t_serial * 1000:8.1f} ms")
    print(f"batched (partition-based):   {t_batch * 1000:8.1f} ms")
    print(f"speedup: x{t_serial / t_batch:.1f}")

    # --- 5. an actual timeslice answer -----------------------------------
    q = (
        normalize(day(dt.date(2021, 1, 1))),
        normalize(day(dt.date(2021, 2, 28))),
    )
    employed = index.query_count(*q)
    print(
        f"employees active sometime in [2021-01-01, 2021-02-28]: {employed}"
    )


if __name__ == "__main__":
    main()
