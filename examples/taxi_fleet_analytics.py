"""Batch analytics over short trip intervals (TAXIS-style workload).

Short intervals sink to the bottom of the HINT hierarchy, where the
partition-based strategy's horizontal locality pays off the most — the
regime of the paper's TAXIS and GREEND results.  The script also pits
HINT against the 1D-grid baseline (Table 5's comparison) on the same
batch.

Run with::

    python examples/taxi_fleet_analytics.py
"""

import time

import numpy as np

from repro import GridIndex, HintIndex, QueryBatch, grid_partition_based, partition_based, query_based
from repro.workloads.realistic import REAL_DATASET_SPECS, make_realistic_clone


def main():
    spec = REAL_DATASET_SPECS["TAXIS"]
    print(f"cloning TAXIS: {spec.cardinality:,} trips at 1/400 scale")
    trips = make_realistic_clone("TAXIS", scale=1 / 400, seed=7)
    stats = trips.stats()
    print(
        f"  {stats.cardinality:,} trips, avg duration {stats.avg_duration:.0f}s "
        f"({stats.avg_duration_pct:.4f}% of the domain)"
    )

    # --- index with the paper's m = 17 -----------------------------------
    m = spec.paper_m
    normalized = trips.normalized(m)
    t0 = time.perf_counter()
    index = HintIndex(normalized, m=m)
    print(
        f"HINT(m={m}) built in {time.perf_counter() - t0:.2f}s; "
        f"level histogram (top 3 by count): "
        f"{sorted(index.level_histogram().items(), key=lambda kv: -kv[1])[:3]}"
    )

    grid = GridIndex(normalized, domain=(0, (1 << m) - 1))
    print(f"1D-grid baseline: {grid}")

    # --- a batch of 10-minute dispatch windows ---------------------------
    rng = np.random.default_rng(1)
    domain = 1 << m
    window = max(1, round(domain * 600 / spec.domain))  # ~10 min, scaled
    q_st = rng.integers(0, domain - window, size=10_000)
    batch = QueryBatch(q_st, q_st + window - 1)

    runs = [
        ("HINT query-based (serial)", lambda: query_based(index, batch)),
        ("HINT partition-based", lambda: partition_based(index, batch)),
        ("1D-grid partition-based", lambda: grid_partition_based(grid, batch)),
    ]
    counts = None
    for name, fn in runs:
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if counts is None:
            counts = result.counts
        assert np.array_equal(result.counts, counts)
        print(f"  {name:28s} {elapsed * 1000:8.1f} ms")

    busiest = int(np.argmax(counts))
    print(
        f"busiest window: query {busiest} with {counts[busiest]} "
        f"concurrent/overlapping trips"
    )


if __name__ == "__main__":
    main()
