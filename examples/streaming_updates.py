"""Streaming inserts + queries with the dynamic HINT wrapper.

The paper's motivation is systems that receive millions of requests per
second; those systems ingest while they answer.  ``DynamicHint`` stages
inserts in a buffer, masks deletes with tombstones, and periodically
merges into a rebuilt static index — queries always see the current
state.  This example simulates a day of a booking system: reservations
stream in, some get cancelled, and availability dashboards fire query
batches throughout.

Also demonstrates Allen-relationship selections (``AllenSelection``) on
the final snapshot.

Run with::

    python examples/streaming_updates.py
"""

import time

import numpy as np

from repro import AllenSelection, DynamicHint, HintIndex


def main():
    rng = np.random.default_rng(11)
    m = 16  # one slot per ~1.3s of a day
    domain = 1 << m
    dyn = DynamicHint(m=m, rebuild_threshold=20_000)

    print("streaming 100K reservations with 10% cancellations...")
    t0 = time.perf_counter()
    live = []
    checks = 0
    for step in range(100_000):
        st = int(rng.integers(0, domain - 2_000))
        rid = dyn.insert(st, st + int(rng.integers(100, 2_000)))
        live.append(rid)
        if rng.random() < 0.10 and live:
            victim = live.pop(int(rng.integers(0, len(live))))
            dyn.delete(victim)
        if step % 20_000 == 19_999:
            # a dashboard query mid-stream
            slot = int(rng.integers(0, domain - 500))
            count = dyn.query_count(slot, slot + 499)
            checks += 1
            print(
                f"  step {step + 1}: {len(dyn):,} live, "
                f"{dyn.buffered:,} buffered, {dyn.rebuilds} rebuilds, "
                f"window [{slot}, {slot + 499}] -> {count} overlapping"
            )
    elapsed = time.perf_counter() - t0
    print(f"ingest + {checks} queries took {elapsed:.2f}s "
          f"({100_000 / elapsed:,.0f} ops/s)")

    # --- snapshot and Allen-relationship analytics ----------------------
    snap = dyn.snapshot()
    print(f"\nfinal snapshot: {snap}")
    engine = AllenSelection(snap, HintIndex(snap, m=m))
    probe = (domain // 2, domain // 2 + 1_000)
    for relation in ("contains", "contained_by", "overlaps", "meets"):
        n = engine.query_count(relation, *probe)
        print(f"  reservations that {relation.upper()} {probe}: {n}")


if __name__ == "__main__":
    main()
