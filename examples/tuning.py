"""Capacity planning: pick m, predict sharing, choose a strategy.

Three planning tools the library provides before any query runs:

1. the analytical **cost model** (`repro.hint.cost`) picks the index
   parameter ``m`` for a workload — the role the HINT cost model plays
   in the paper's setup;
2. **batch characterization** (`repro.analysis.analyze_batch`) measures
   how much partition sharing a concrete batch offers — the predictor
   of the partition-based strategy's advantage;
3. the **strategy advisor** (`repro.recommend_strategy`) turns batch and
   collection shape into a recommendation.

The script then verifies the predictions by timing the strategies.

Run with::

    python examples/tuning.py
"""

import time

from repro import HintIndex, partition_based, query_based, recommend_strategy
from repro.analysis import analyze_batch
from repro.hint.cost import choose_m_model, cost_profile
from repro.workloads.queries import uniform_queries
from repro.workloads.realistic import make_realistic_clone


def main():
    print("cloning TAXIS at 300K trips...")
    coll = make_realistic_clone("TAXIS", cardinality=300_000, seed=0)

    # --- 1. pick m with the cost model -----------------------------------
    profile = cost_profile(coll, extent_pct=0.1, candidates=range(8, 21, 2))
    print(f"\n{'m':>3} {'visits':>9} {'cmp rows':>9} {'model cost':>11}")
    for m, est in profile.items():
        print(
            f"{m:>3} {est.partition_visits:>9.1f} "
            f"{est.comparison_rows:>9.1f} {est.total:>11.1f}"
        )
    m = choose_m_model(coll, extent_pct=0.1)
    print(f"model picks m = {m} (the paper's C++ build preferred 17 — "
          "the optimum is substrate-dependent, see EXPERIMENTS.md A6)")

    normalized = coll.normalized(m)
    index = HintIndex(normalized, m=m)

    # --- 2. characterize two batches --------------------------------------
    domain = 1 << m
    narrow = uniform_queries(5_000, domain, 0.01, seed=1)  # thin queries
    wide = uniform_queries(5_000, domain, 1.0, seed=1)  # fat queries
    for name, batch in (("narrow (0.01%)", narrow), ("wide (1%)", wide)):
        stats = analyze_batch(index, batch)
        print(
            f"\nbatch {name}: {stats.total_incidences} incidences over "
            f"{stats.total_distinct} partitions -> sharing x"
            f"{stats.sharing_factor:.1f} "
            f"({stats.incidences_per_query:.1f} partitions/query)"
        )

    # --- 3. advisor + verification ----------------------------------------
    rec = recommend_strategy(len(coll), wide)
    print(f"\nadvisor: {rec.strategy} — {rec.reason}")

    for name, batch in (("narrow", narrow), ("wide", wide)):
        t0 = time.perf_counter()
        query_based(index, batch, mode="checksum")
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        partition_based(index, batch, mode="checksum")
        t_pb = time.perf_counter() - t0
        print(
            f"  {name:6s}: serial {t_serial * 1000:7.1f} ms, "
            f"partition-based {t_pb * 1000:6.1f} ms "
            f"(x{t_serial / t_pb:.0f})"
        )


if __name__ == "__main__":
    main()
