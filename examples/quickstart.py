"""Quickstart: index a collection, run a query batch with every strategy.

Run with::

    python examples/quickstart.py
"""

import time

import numpy as np

from repro import (
    HintIndex,
    IntervalCollection,
    QueryBatch,
    STRATEGIES,
    recommend_strategy,
    run_strategy,
)


def main():
    # --- 1. build a collection of 200K random intervals ----------------
    rng = np.random.default_rng(42)
    domain = 1 << 20  # ~1M discrete positions
    n = 200_000
    st = rng.integers(0, domain - 1_000, size=n)
    end = st + rng.integers(1, 1_000, size=n)
    collection = IntervalCollection(st, end)
    print(f"collection: {collection}")

    # --- 2. index it with HINT -----------------------------------------
    t0 = time.perf_counter()
    index = HintIndex(collection, m=20)
    print(
        f"index: {index} built in {time.perf_counter() - t0:.2f}s, "
        f"replication x{index.replication_factor():.2f}"
    )

    # --- 3. a single query ---------------------------------------------
    ids = index.query(500_000, 501_000)
    print(f"single query [500000, 501000]: {ids.size} results")

    # --- 4. a batch of 5 000 queries, every strategy --------------------
    q_st = rng.integers(0, domain - 2_000, size=5_000)
    batch = QueryBatch(q_st, q_st + 2_000)
    rec = recommend_strategy(len(collection), batch)
    print(f"advisor says: {rec.strategy} ({rec.reason})")

    reference_counts = None
    for name in STRATEGIES:
        t0 = time.perf_counter()
        result = run_strategy(name, index, batch)
        elapsed = time.perf_counter() - t0
        if reference_counts is None:
            reference_counts = result.counts
        assert np.array_equal(result.counts, reference_counts)
        print(
            f"  {name:20s} {elapsed * 1000:8.1f} ms  "
            f"({result.total()} total results)"
        )

    # --- 5. materialize ids for the winner ------------------------------
    full = run_strategy("partition-based", index, batch, mode="ids")
    print(f"query 0 returned ids: {np.sort(full.ids(0))[:8]} ...")


if __name__ == "__main__":
    main()
