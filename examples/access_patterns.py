"""Reproduce Table 1 of the paper and watch the cache mechanism.

Rebuilds the running example of the paper (Figure 2: HINT with m = 4,
queries q1 = [2, 5], q2 = [10, 13], q3 = [4, 6]), prints every
strategy's partition access pattern exactly as in Table 1, and then
replays the traces through the LRU cache simulator to show *why* the
partition-based strategy wins.

Run with::

    python examples/access_patterns.py
"""

from repro.analysis import (
    AccessRecorder,
    format_access_pattern,
    jump_stats,
    simulate_cache,
)
from repro.experiments.table1 import access_patterns
from repro.hint.reference import ReferenceHint
from repro.intervals.batch import QueryBatch
from repro.workloads.realistic import make_realistic_clone
from repro.workloads.queries import uniform_queries


def table1():
    print("=" * 72)
    print("Table 1 — access patterns for the queries of Figure 2 (m = 4)")
    print("=" * 72)
    for name, sequence in access_patterns().items():
        stats = jump_stats(sequence)
        per_level = name.startswith(("level", "partition"))
        print(f"\n[{name}]  accesses={stats.accesses} "
              f"horizontal={stats.horizontal_jumps} "
              f"vertical={stats.vertical_jumps} distance={stats.distance}")
        print(format_access_pattern(sequence, per_level_lines=per_level))


def cache_mechanism():
    print()
    print("=" * 72)
    print("The mechanism: simulated LRU cache misses on a BOOKS-like clone")
    print("=" * 72)
    coll = make_realistic_clone("BOOKS", cardinality=20_000, seed=1).normalized(10)
    ref = ReferenceHint(coll, m=10)
    from repro import HintIndex

    index = HintIndex(coll, m=10)
    batch = uniform_queries(192, 1 << 10, 1.0, seed=1)

    runs = [
        ("query-based", "batch_query_based", {"sort": False}),
        ("query-based-sorted", "batch_query_based", {"sort": True}),
        ("level-based", "batch_level_based", {}),
        ("partition-based", "batch_partition_based", {}),
    ]
    print(f"{'strategy':22s} " + " ".join(f"{c:>9}" for c in (8, 32, 128)))
    for name, method, kwargs in runs:
        recorder = AccessRecorder()
        getattr(ref, method)(batch, recorder=recorder, **kwargs)
        sequence = recorder.partition_sequence()
        misses = [
            simulate_cache(sequence, blocks, index=index).misses
            for blocks in (8, 32, 128)
        ]
        print(f"{name:22s} " + " ".join(f"{m:>9}" for m in misses))
    print("(rows: fewer misses = better locality; columns: cache capacity "
          "in blocks)")


if __name__ == "__main__":
    table1()
    cache_mechanism()
