"""Compare every interval index in the repository on one workload.

Builds HINT, the 1D-grid, the interval tree, the timeline index and the
period index over the same collection, checks they agree, and times
single-query and batch evaluation — the landscape the paper's
introduction surveys, measured instead of cited.

Run with::

    python examples/index_comparison.py
"""

import time

import numpy as np

from repro import (
    GridIndex,
    HintIndex,
    IntervalTree,
    PeriodIndex,
    QueryBatch,
    TimelineIndex,
    partition_based,
)
from repro.grid.batch import grid_partition_based
from repro.workloads.queries import uniform_queries
from repro.workloads.synthetic import generate_synthetic


def main():
    domain = 1 << 20
    print("generating 150K synthetic intervals (alpha=1.2, sigma=domain/64)")
    coll = generate_synthetic(150_000, domain, 1.2, domain // 64, seed=3).normalized(20)

    builders = [
        ("HINT(m=20)", lambda: HintIndex(coll, m=20)),
        ("1D-grid", lambda: GridIndex(coll, domain=(0, domain - 1))),
        ("interval tree", lambda: IntervalTree(coll)),
        ("timeline", lambda: TimelineIndex(coll)),
        ("period index", lambda: PeriodIndex(coll)),
    ]
    indexes = {}
    print(f"\n{'index':15s} {'build':>10s}")
    for name, build in builders:
        t0 = time.perf_counter()
        indexes[name] = build()
        print(f"{name:15s} {(time.perf_counter() - t0) * 1000:8.0f} ms")

    # --- correctness cross-check -----------------------------------------
    batch = uniform_queries(2_000, domain, 0.1, seed=9)
    reference = None
    times = {}
    for name, idx in indexes.items():
        t0 = time.perf_counter()
        if name == "HINT(m=20)":
            counts = partition_based(idx, batch).counts
        elif name == "1D-grid":
            counts = grid_partition_based(idx, batch).counts
        else:
            counts = idx.batch(batch).counts
        times[name] = time.perf_counter() - t0
        if reference is None:
            reference = counts
        assert np.array_equal(counts, reference), f"{name} disagrees!"

    print(f"\nbatch of {len(batch)} queries (0.1% extent), all indexes agree:")
    for name, elapsed in sorted(times.items(), key=lambda kv: kv[1]):
        print(f"  {name:15s} {elapsed * 1000:8.1f} ms")
    print(
        "\n(HINT and the grid run their batch strategies; the other three "
        "evaluate serially — they have no batch strategy, which is the gap "
        "the paper fills for HINT.)"
    )


if __name__ == "__main__":
    main()
