"""Validate the JSON snapshot schema emitted by ``repro stats --json``.

The snapshot (also written by ``serve-sim --metrics-json``) is the
contract between the observability plane and external consumers —
dashboards, the ``stats --input`` re-renderer, CI.  This script pins it:
structure of the ``metrics`` section, the spans section, and ISSUE 3's
acceptance floor (at least one counter, one histogram, and the
span-derived ``repro_span_seconds`` latency series).

Usage (``make obs-smoke`` pipes a live burst through it)::

    PYTHONPATH=src python -m repro.cli stats --json \\
        | python scripts/check_stats_schema.py

    python scripts/check_stats_schema.py snapshot.json

Exits 0 iff the document conforms; prints every violation otherwise.
"""

from __future__ import annotations

import json
import sys

COUNTER_KEYS = {"name", "labels", "value", "help"}
GAUGE_KEYS = COUNTER_KEYS
HISTOGRAM_KEYS = {"name", "labels", "buckets", "counts", "sum", "count", "help"}
SPAN_KEYS = {"capacity", "started", "finished", "dropped", "summary", "recent", "slow"}
SPAN_LATENCY_METRIC = "repro_span_seconds"


def check(snapshot: dict) -> list:
    errors = []

    def need(cond, msg):
        if not cond:
            errors.append(msg)
        return cond

    need(isinstance(snapshot, dict), "snapshot must be a JSON object")
    if errors:
        return errors
    need(snapshot.get("version") == 1, f"version must be 1, got {snapshot.get('version')!r}")
    need(
        isinstance(snapshot.get("generated_unix"), (int, float)),
        "generated_unix must be a unix timestamp",
    )
    need(isinstance(snapshot.get("meta"), dict), "meta must be an object")

    metrics = snapshot.get("metrics")
    if need(isinstance(metrics, dict), "metrics must be an object"):
        for kind, keys in (
            ("counters", COUNTER_KEYS),
            ("gauges", GAUGE_KEYS),
            ("histograms", HISTOGRAM_KEYS),
        ):
            entries = metrics.get(kind)
            if not need(isinstance(entries, list), f"metrics.{kind} must be a list"):
                continue
            for pos, entry in enumerate(entries):
                where = f"metrics.{kind}[{pos}]"
                if not need(isinstance(entry, dict), f"{where} must be an object"):
                    continue
                missing = keys - entry.keys()
                need(not missing, f"{where} missing keys {sorted(missing)}")
                if kind == "histograms" and not missing:
                    need(
                        len(entry["counts"]) == len(entry["buckets"]) + 1,
                        f"{where}: counts must have len(buckets)+1 entries "
                        "(trailing overflow bucket)",
                    )
                    need(
                        sum(entry["counts"]) == entry["count"],
                        f"{where}: bucket counts must sum to count",
                    )
        # ISSUE 3 acceptance floor: a snapshot of a real run carries at
        # least one counter, one histogram, and span-derived latency.
        need(len(metrics.get("counters", [])) >= 1, "no counters in snapshot")
        need(len(metrics.get("histograms", [])) >= 1, "no histograms in snapshot")
        need(
            any(
                h.get("name") == SPAN_LATENCY_METRIC
                for h in metrics.get("histograms", [])
                if isinstance(h, dict)
            ),
            f"span-derived latency histogram {SPAN_LATENCY_METRIC!r} absent",
        )

    spans = snapshot.get("spans")
    if need(isinstance(spans, dict), "spans section absent (recorder not snapshotted)"):
        missing = SPAN_KEYS - spans.keys()
        need(not missing, f"spans missing keys {sorted(missing)}")
        if "finished" in spans:
            need(spans["finished"] >= 1, "no finished spans recorded")
        for pos, sp in enumerate(spans.get("recent", [])):
            need(
                isinstance(sp, dict)
                and {"name", "span_id", "started", "duration", "attrs"} <= sp.keys(),
                f"spans.recent[{pos}] malformed",
            )
    return errors


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        with open(argv[0]) as fh:
            snapshot = json.load(fh)
    else:
        snapshot = json.load(sys.stdin)
    errors = check(snapshot)
    if errors:
        for err in errors:
            print(f"SCHEMA: {err}", file=sys.stderr)
        print(f"FAIL: {len(errors)} schema violation(s)", file=sys.stderr)
        return 1
    metrics = snapshot["metrics"]
    print(
        "OK: snapshot conforms "
        f"(counters={len(metrics['counters'])}, gauges={len(metrics['gauges'])}, "
        f"histograms={len(metrics['histograms'])}, "
        f"spans finished={snapshot['spans']['finished']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
