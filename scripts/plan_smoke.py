"""Planner smoke: calibrate, decide, differential mini-sweep, round-trip.

The tier-1 ``make plan-smoke`` gate (see docs/planning.md).  Asserts, on
a small synthetic index:

1. the startup micro-calibration fits a model within its budget;
2. the calibration file round-trips exactly (save -> load -> same
   coefficients) and a fresh executor reuses it instead of re-probing;
3. the planner-chosen plan is result-identical to every static plan,
   across strategies and result modes, on a single and a sharded index;
4. a planner that throws mid-decide degrades to the static policy with
   the batch intact (the ``planner.decide`` fault site).

Exits non-zero on the first violated invariant.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

import repro.obs as obs  # noqa: E402
from repro.core.strategies import run_strategy  # noqa: E402
from repro.hint.index import HintIndex  # noqa: E402
from repro.intervals.batch import QueryBatch  # noqa: E402
from repro.planner import CostModel, PlannedExecutor  # noqa: E402
from repro.shard import ShardedHint  # noqa: E402
from repro.verify.faults import SITE_PLANNER_DECIDE, FaultPlan  # noqa: E402
from repro.workloads import generate_synthetic  # noqa: E402

M = 12
DOMAIN = 1 << M
CARDINALITY = 5_000
MODES = ("count", "checksum", "ids")
STRATS = ("partition-based", "join-based", "level-based")


def fail(msg: str) -> None:
    print(f"plan-smoke: FAIL: {msg}", file=sys.stderr)
    raise SystemExit(1)


def mixed_batch(rng, n: int = 1536) -> QueryBatch:
    narrow, wide = max(DOMAIN // 5000, 1), DOMAIN // 16
    n_wide = n // 8
    st1 = rng.integers(0, DOMAIN - narrow - 1, n - n_wide)
    st2 = rng.integers(0, DOMAIN - wide - 1, n_wide)
    st = np.concatenate([st1, st2])
    end = np.concatenate([st1 + narrow, st2 + wide])
    perm = rng.permutation(st.size)
    return QueryBatch(st[perm], end[perm])


def main() -> int:
    rng = np.random.default_rng(3)
    coll = generate_synthetic(
        CARDINALITY, DOMAIN, 1.8, DOMAIN / 100, seed=3
    ).normalized(M)
    index = HintIndex(coll, m=M)
    index.precompute_aux()
    batch = mixed_batch(rng)
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="plan-smoke-"))
    path = str(tmp / "calibration.json")

    # -- 1. calibration fits a model ---------------------------------- #
    px = PlannedExecutor(index, model_path=path, calibrate=True)
    model = px.planner.model
    if not model.calibrated:
        fail("calibration produced no fitted plans")
    print(f"calibrated {len(model.keys())} plans: {model.keys()}")

    # -- 2. persistence round-trip + reuse ---------------------------- #
    loaded = CostModel.load(path)
    if loaded.to_dict()["entries"] != model.to_dict()["entries"]:
        fail("calibration file does not round-trip")
    fresh = PlannedExecutor(index, model_path=path, calibrate=True)
    if fresh.planner.model.keys() != model.keys():
        fail("fresh executor did not reuse the persisted calibration")
    fresh.close()
    print("calibration round-trip + reuse ok")

    # -- 3. differential: planner == every static plan ----------------- #
    decision = px.planner.decide(batch, mode="ids")
    print(f"decision on mixed batch: {decision.describe()}")
    for mode in MODES:
        got = px.execute(batch, mode=mode)
        for strategy in STRATS:
            want = run_strategy(strategy, index, batch, mode=mode)
            if got != want:
                fail(f"planner result != {strategy} [{mode}] on HintIndex")
    sharded = ShardedHint(coll, k=2, m=M)
    pxs = PlannedExecutor(sharded, model_path=str(tmp / "sharded.json"), calibrate=True)
    for mode in MODES:
        got = pxs.execute(batch, mode=mode)
        want = run_strategy("partition-based", index, batch, mode=mode)
        if got != want:
            fail(f"planner result mismatch [{mode}] on ShardedHint")
    pxs.close()
    sharded.close()
    print("differential sweep ok (single + sharded, all modes)")

    # -- 4. fault leg: a throwing planner loses no batch --------------- #
    obs.configure(enabled=True)
    faulty = PlannedExecutor(
        index,
        model_path=path,
        calibrate=True,
        fault_plan=FaultPlan.once(SITE_PLANNER_DECIDE),
    )
    got = faulty.execute(batch, mode="ids")
    want = run_strategy("partition-based", index, batch, mode="ids")
    if got != want:
        fail("faulted decide changed the result")
    snap = obs.snapshot()
    fallbacks = sum(
        c["value"]
        for c in snap["metrics"]["counters"]
        if c["name"] == obs.PLANNER_FALLBACKS
    )
    if fallbacks != 1:
        fail(f"expected 1 recorded planner fallback, saw {fallbacks}")
    faulty.close()
    obs.configure(enabled=False)
    print("fault degradation ok (batch intact, fallback recorded)")

    px.close()
    print("plan-smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
