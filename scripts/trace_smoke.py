"""Distributed-tracing smoke gate (``make trace-smoke``).

One serving burst, three checks — all over a real socket with the
engine's ``processes`` backend, so the full cross-process path runs:
client-stamped trace context → protocol-v2 QUERY frame → admission →
service staging → flush → engine dispatch → pool-worker execution →
telemetry shipped back and merged.

1. **Complete cross-process traces** — at least one client-chosen
   ``trace_id`` must reconstruct into a single parented tree containing
   every layer (``net.request`` → ``service.flush`` →
   ``engine.execute`` → worker-side ``strategy.batch``) with spans from
   at least two distinct pids.
2. **Chrome-trace export** — the Trace Event dump of that trace must
   carry complete (``X``) events from both processes, loadable in
   ``chrome://tracing`` / Perfetto as-is.
3. **Merged worker metrics** — the parent registry must hold
   worker-labelled ``repro_strategy_partition_touches_total`` series
   with a positive total, plus a positive telemetry-merge count: the
   deltas piggybacked on result payloads actually landed.

Exits non-zero on any violation.
"""

from __future__ import annotations

import os
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

import repro.obs as obs
from repro.engine import ExecutionEngine
from repro.hint.index import HintIndex
from repro.intervals.collection import IntervalCollection
from repro.net import QueryClient, TraceContext, new_trace_id, serve_in_thread
from repro.obs.chrome_trace import to_chrome_trace
from repro.obs.tracecontext import build_trace_tree, format_trace_id
from repro.service import BatchingQueryService

M = 12
REQUESTS = 24
LAYERS = ("net.request", "service.flush", "engine.execute", "strategy.batch")


def _walk(node, names, pids):
    names.add(node["name"])
    if node.get("pid") is not None:
        pids.add(node["pid"])
    for child in node.get("children", ()):
        _walk(child, names, pids)


def main() -> int:
    rng = np.random.default_rng(7)
    top = (1 << M) - 1
    st = rng.integers(0, top + 1, 20_000)
    end = np.minimum(st + rng.integers(0, 400, 20_000), top)
    coll = IntervalCollection(st, end)

    ob = obs.configure(enabled=True)
    engine = ExecutionEngine(
        HintIndex(coll, m=M), backend="processes", workers=2
    )
    service = BatchingQueryService(
        engine, mode="count", max_batch=8, max_delay_ms=2.0
    )
    handle = serve_in_thread(service, owns_service=True)
    id_rng = random.Random(7)
    trace_ids = []
    try:
        with QueryClient(handle.host, handle.port) as client:
            for _ in range(REQUESTS):
                tid = new_trace_id(id_rng)
                trace_ids.append(tid)
                a = int(rng.integers(0, top))
                b = min(a + int(rng.integers(1, 400)), top)
                client.query(a, b, trace=TraceContext(tid))
    finally:
        handle.close()
        engine.close()

    states = [sp.state() for sp in ob.recorder.spans()]
    parent_pid = os.getpid()

    # Check 1: at least one trace is complete and crosses processes.
    complete = []
    for tid in trace_ids:
        tree = build_trace_tree(states, tid)
        if tree is None:
            raise SystemExit(
                f"trace {format_trace_id(tid)} left no spans at all"
            )
        names, pids = set(), set()
        _walk(tree, names, pids)
        if all(layer in names for layer in LAYERS) and pids - {parent_pid}:
            complete.append(tid)
    if not complete:
        raise SystemExit(
            f"none of {len(trace_ids)} traces reconstructed with all of "
            f"{LAYERS} across >= 2 pids — cross-process propagation or "
            "span shipping is broken"
        )
    print(
        f"trace-smoke: {len(complete)}/{len(trace_ids)} traces complete "
        f"across processes (e.g. {format_trace_id(complete[0])})"
    )

    # Check 2: the Chrome-trace dump of one complete trace spans 2 pids.
    events = to_chrome_trace(states, trace_id=complete[0])["traceEvents"]
    xevents = [e for e in events if e["ph"] == "X"]
    xpids = {e["pid"] for e in xevents}
    xnames = {e["name"] for e in xevents}
    if len(xpids) < 2 or not all(layer in xnames for layer in LAYERS):
        raise SystemExit(
            f"chrome-trace dump incomplete: pids={sorted(xpids)}, "
            f"layers={sorted(xnames)}"
        )
    print(
        f"trace-smoke: chrome dump ok ({len(xevents)} events over "
        f"{len(xpids)} pids)"
    )

    # Check 3: worker telemetry landed in the parent registry.
    snap = ob.registry.snapshot()
    touches = [
        c for c in snap["counters"]
        if c["name"] == "repro_strategy_partition_touches_total"
        and "worker" in c.get("labels", {})
    ]
    merges = sum(
        c["value"] for c in snap["counters"]
        if c["name"] == "repro_worker_telemetry_merges_total"
    )
    workers = sorted({c["labels"]["worker"] for c in touches})
    total = sum(c["value"] for c in touches)
    if not touches or total <= 0:
        raise SystemExit(
            "no worker-labelled partition-touch series in the parent "
            "registry — telemetry aggregation is broken"
        )
    if merges <= 0:
        raise SystemExit("telemetry merge counter never incremented")
    print(
        f"trace-smoke: worker metrics merged ({total} touches from "
        f"workers {workers}, {int(merges)} deltas)"
    )
    print("trace-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
