"""Serving-path smoke gate (``make serve-smoke``).

Two phases, both fast enough for tier-1 CI:

1. **Differential over the socket** — an ids-mode server over a random
   collection must return, through the full frame-encode / TCP /
   decode path, exactly the sorted id sets the linear-scan oracle
   produces.
2. **Overload burst through the CLI** — launches ``python -m repro.cli
   serve`` as a real subprocess (reject backpressure, a deliberately
   tiny in-flight quota and a slow flush deadline so the burst exceeds
   capacity), offers a 200+-query open-loop trace containing a burst
   window, and requires **every** request to be answered — typed
   ``OVERLOAD`` responses included, hung sockets not — with both
   sheds and successes present.

Exits non-zero on any violation.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import HintIndex, IntervalCollection, NaiveScan
from repro.net import QueryClient, serve_in_thread
from repro.net.loadgen import run_load, summarize
from repro.service import BatchingQueryService
from repro.workloads.arrivals import ArrivalSpec

M = 12
N_DIFFERENTIAL = 60


def phase_differential() -> None:
    rng = np.random.default_rng(42)
    top = (1 << M) - 1
    st = rng.integers(0, top + 1, 5_000)
    end = np.minimum(st + rng.integers(0, 200, 5_000), top)
    coll = IntervalCollection(st, end)
    naive = NaiveScan(coll)
    service = BatchingQueryService(
        HintIndex(coll, m=M), mode="ids", max_batch=16, max_delay_ms=2.0
    )
    handle = serve_in_thread(service, owns_service=True)
    try:
        with QueryClient(handle.host, handle.port) as client:
            for _ in range(N_DIFFERENTIAL):
                a = int(rng.integers(0, top + 1))
                b = min(a + int(rng.integers(0, 500)), top)
                got = client.query(a, b)
                want = tuple(sorted(int(v) for v in naive.query(a, b)))
                if got != want:
                    raise SystemExit(
                        f"differential mismatch for [{a}, {b}]: "
                        f"{len(got)} ids over the socket vs "
                        f"{len(want)} from the oracle"
                    )
    finally:
        handle.close()
    print(f"serve-smoke: differential ok ({N_DIFFERENTIAL} queries)")


def phase_overload() -> None:
    repo = Path(__file__).resolve().parent.parent
    # Tiny quota + slow flush deadline => the burst window exceeds
    # capacity and the reject policy must shed, visibly and typed.
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--cardinality", "10000",
            "--m", str(M),
            "--duration", "30",
            "--backpressure", "reject",
            "--max-batch", "1000",
            "--max-delay-ms", "50",
            "--max-queue", "8",
            "--max-inflight", "8",
        ],
        cwd=repo,
        env={**os.environ, "PYTHONPATH": "src"},
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"serving on ([\d.]+):(\d+)", line)
        if not match:
            raise SystemExit(f"could not parse server address from {line!r}")
        host, port = match.group(1), int(match.group(2))
        spec = ArrivalSpec(
            duration=2.0,
            rate=100.0,
            burst_factor=8.0,
            burst_every=1.0,
            burst_duration=0.3,
            tenants=("alpha", "beta"),
            domain=(1 << M) - 1,
            extent=256,
            seed=5,
        )
        t0 = time.perf_counter()
        records = run_load(host, port, spec, processes=1)
        elapsed = time.perf_counter() - t0
        summary = summarize(records, duration=elapsed)
    finally:
        proc.terminate()
        proc.wait(timeout=15)
    print(f"serve-smoke: {summary.describe()}")
    if summary.offered < 200:
        raise SystemExit(
            f"burst offered only {summary.offered} queries (< 200); "
            "the trace spec is mis-sized"
        )
    if summary.unanswered:
        raise SystemExit(
            f"{summary.unanswered} request(s) went unanswered under "
            "overload — every request must get a typed response"
        )
    if not summary.by_status.get("overload"):
        raise SystemExit(
            "no OVERLOAD responses — the burst never exceeded the "
            "in-flight quota, so the shedding path went untested"
        )
    if not summary.by_status.get("ok"):
        raise SystemExit("no successful responses under baseline load")
    print(
        f"serve-smoke: overload ok ({summary.offered} offered, "
        f"{summary.by_status['overload']} shed typed, 0 unanswered)"
    )


def main() -> int:
    phase_differential()
    phase_overload()
    print("serve-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
